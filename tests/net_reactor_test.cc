// Reactor-edge battery for the epoll wire layer (net/server.h): the
// behaviors a thread-per-connection server could not even express.
// Asserts:
//
//  * pipelined batches: two tagged batches submitted back to back on
//    ONE connection demultiplex by their echoed batch= tags, awaited in
//    either order, with responses bit-identical to the in-process
//    SubmitBatch futures — across pool sizes {0, 1, 8} (on a racing
//    pool the engine-serialization order is recovered from the
//    receipts' charge ids and replayed in-process);
//  * connection cap: the connection past --max_connections gets one
//    structured RESOURCE_EXHAUSTED ERR and a close, counted, and the
//    slot is reusable the moment an occupant leaves;
//  * idle timeout: an idle connection is evicted with a structured
//    DEADLINE_EXCEEDED ERR, freeing capacity at the cap;
//  * transport vs protocol errors: a peer that resets mid-stream
//    increments net_transport_errors_total, NOT protocol_errors;
//  * accept-loop survival: with the fd table driven to EMFILE the
//    daemon counts transient accept errors, keeps serving existing
//    connections, and resumes accepting once descriptors free up;
//  * soak: O(10k) idle connections plus 100 active pipelining clients
//    on a fixed thread budget (io_threads + engine pool — no
//    per-connection threads), with exact STATS arithmetic afterwards;
//  * fd hygiene: every socket the layer creates is CLOEXEC.

#include "net/server.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/engine_host.h"
#include "util/random.h"
#include "util/socket.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;
constexpr char kPolicyId[] = "p";
constexpr char kTenantA[] = "alpha";
constexpr char kTenantB[] = "beta";

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

std::unique_ptr<EngineHost> MakeHost(
    size_t pool_threads, obs::MetricsRegistry* metrics = nullptr) {
  EngineHostOptions options;
  options.num_threads = pool_threads;
  options.root_seed = kSeed;
  options.metrics = metrics;
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  auto host = std::make_unique<EngineHost>(options);
  EXPECT_TRUE(
      host->AddTenant(kPolicyId, kTenantA, policy, MakeData(domain, 300, 3))
          .ok());
  EXPECT_TRUE(
      host->AddTenant(kPolicyId, kTenantB, policy, MakeData(domain, 200, 5))
          .ok());
  return host;
}

// Two distinct batches on distinct sessions: responses are
// distinguishable by label and the budget arithmetic never overlaps.
constexpr char kBatchOne[] =
    "histogram eps=0.25 label=one_h session=s_one\n"
    "mean eps=0.125 label=one_m session=s_one\n"
    "range eps=0.25 lo=2 hi=9 label=one_r session=s_one\n";
constexpr char kBatchTwo[] =
    "quantiles eps=0.125 qs=0.25,0.5 label=two_q session=s_two\n"
    "mean eps=0.25 label=two_m session=s_two\n";

void ExpectResponsesEqual(const std::vector<QueryResponse>& wire,
                          const std::vector<QueryResponse>& local,
                          const std::string& context) {
  ASSERT_EQ(wire.size(), local.size()) << context;
  for (size_t i = 0; i < wire.size(); ++i) {
    SCOPED_TRACE(context + ", query " + std::to_string(i));
    EXPECT_EQ(wire[i].status.code(), local[i].status.code());
    EXPECT_EQ(wire[i].status.message(), local[i].status.message());
    EXPECT_EQ(wire[i].label, local[i].label);
    EXPECT_EQ(wire[i].sensitivity, local[i].sensitivity);
    EXPECT_EQ(wire[i].cache_hit, local[i].cache_hit);
    ASSERT_EQ(wire[i].values.size(), local[i].values.size());
    for (size_t v = 0; v < wire[i].values.size(); ++v) {
      EXPECT_EQ(wire[i].values[v], local[i].values[v]) << "value " << v;
    }
    EXPECT_EQ(wire[i].receipt.session, local[i].receipt.session);
    EXPECT_EQ(wire[i].receipt.charge_id, local[i].receipt.charge_id);
    EXPECT_EQ(wire[i].receipt.charged, local[i].receipt.charged);
    EXPECT_EQ(wire[i].receipt.epsilon, local[i].receipt.epsilon);
    EXPECT_EQ(wire[i].receipt.remaining, local[i].receipt.remaining);
    EXPECT_EQ(wire[i].receipt.refunded, local[i].receipt.refunded);
  }
}

/// Raw-socket frame plumbing for the tests that speak the protocol
/// below the client library.
struct RawConn {
  Socket sock;
  FrameDecoder decoder;

  static StatusOr<RawConn> Connect(uint16_t port) {
    auto sock = Socket::ConnectTcp("127.0.0.1", port);
    if (!sock.ok()) return sock.status();
    return RawConn{std::move(*sock), FrameDecoder()};
  }

  void Send(const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    ASSERT_TRUE(sock.SendAll(frame.data(), frame.size()).ok());
  }

  /// Next frame payload; "" on EOF.
  std::string Read() {
    std::string payload;
    char buf[4096];
    while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
      auto n = sock.Recv(buf, sizeof(buf));
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) return std::string();
      decoder.Feed(buf, *n);
    }
    return payload;
  }

  /// True iff the peer has cleanly closed (next read yields EOF).
  bool AtEof() {
    char buf[64];
    auto n = sock.Recv(buf, sizeof(buf));
    return n.ok() && *n == 0;
  }
};

Status ParseErrFrame(const std::string& payload) {
  auto msg = ParseWireMessage(payload);
  if (!msg.ok()) return msg.status();
  EXPECT_EQ(msg->verb, std::string(kVerbErr)) << payload;
  Status carried;
  EXPECT_TRUE(ParseStatusFields(*msg, &carried).ok()) << payload;
  return carried;
}

double RegistryValue(obs::MetricsRegistry* registry,
                     const std::string& name) {
  // Counter reads go through the text render: no extra read API needed,
  // and — unlike a STATS fetch — no file descriptors either, which the
  // fd-exhaustion test depends on.
  const std::string text = registry->RenderPrometheusText();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
  }
  return -1.0;
}

bool WaitFor(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

size_t CountOpenFds() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count >= 3 ? count - 3 : 0;  // ".", "..", the DIR itself
}

TEST(NetReactorTest, PipelinedBatchesDemuxOnOneConnection) {
  // Zero pool workers: the engine runs each batch inline on the I/O
  // thread the moment its last REQ arrives, so server-side execution
  // order is submission order — every interleaving below is exact.
  auto wire_host = MakeHost(0);
  auto local_host = MakeHost(0);
  auto server = BlowfishServer::Start(wire_host.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Both batches ship before ANY reply frame is read.
  auto h1 = (*client)->SubmitPipelined(kBatchOne);
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  auto h2 = (*client)->SubmitPipelined(kBatchTwo);
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();

  // Await the SECOND batch first: the client must buffer every frame
  // of batch one (which the server wrote first) into its pending state
  // while pumping for batch two.
  std::vector<size_t> order_two;
  auto r2 = (*client)->AwaitBatch(
      *h2, [&](size_t index, const QueryResponse&) {
        order_two.push_back(index);
      });
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->size(), 2u);
  EXPECT_EQ(order_two, (std::vector<size_t>{0, 1}));

  // Awaiting batch one now replays its buffered results in their
  // original arrival order — request order, on zero workers.
  std::vector<size_t> order_one;
  auto r1 = (*client)->AwaitBatch(
      *h1, [&](size_t index, const QueryResponse&) {
        order_one.push_back(index);
      });
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_EQ(r1->size(), 3u);
  EXPECT_EQ(order_one, (std::vector<size_t>{0, 1, 2}));

  // Bit-identity against in-process submits in the same order.
  auto req1 = EngineHost::ParseBatchText(kBatchOne);
  auto req2 = EngineHost::ParseBatchText(kBatchTwo);
  ASSERT_TRUE(req1.ok() && req2.ok());
  auto local1 =
      local_host->SubmitBatch(kPolicyId, kTenantA, std::move(*req1)).get();
  auto local2 =
      local_host->SubmitBatch(kPolicyId, kTenantA, std::move(*req2)).get();
  ASSERT_TRUE(local1.ok() && local2.ok());
  ExpectResponsesEqual(*r1, *local1, "batch one");
  ExpectResponsesEqual(*r2, *local2, "batch two");

  EXPECT_TRUE((*client)->Bye().ok());
  (*server)->Stop();
  const BlowfishServer::Stats stats = (*server)->stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.transport_errors, 0u);
}

TEST(NetReactorTest, PipelinedWireIsBitIdenticalAcrossPoolSizes) {
  for (size_t pool : {size_t{0}, size_t{1}, size_t{8}}) {
    const std::string context = "pool " + std::to_string(pool);
    auto wire_host = MakeHost(pool);
    auto server = BlowfishServer::Start(wire_host.get());
    ASSERT_TRUE(server.ok());
    auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                          kPolicyId, kTenantA);
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    auto h1 = (*client)->SubmitPipelined(kBatchOne);
    auto h2 = (*client)->SubmitPipelined(kBatchTwo);
    ASSERT_TRUE(h1.ok() && h2.ok());
    auto r1 = (*client)->AwaitBatch(*h1);
    auto r2 = (*client)->AwaitBatch(*h2);
    ASSERT_TRUE(r1.ok()) << context << ": " << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << context << ": " << r2.status().ToString();

    // On a racing pool either batch may reach the engine first, but
    // batches are SERIALIZED against each other there, so the engine
    // saw some definite order — recover it from the charge ids (the
    // accountant's ledger counter is monotone) and replay it
    // in-process. With pool <= 1 this always recovers submission
    // order, pinning the replay trick itself against drift.
    ASSERT_FALSE(r1->empty());
    ASSERT_FALSE(r2->empty());
    const bool one_first =
        (*r1)[0].receipt.charge_id < (*r2)[0].receipt.charge_id;
    if (pool <= 1) EXPECT_TRUE(one_first) << context;

    auto local_host = MakeHost(pool);
    auto submit = [&](const char* text) {
      auto requests = EngineHost::ParseBatchText(text);
      EXPECT_TRUE(requests.ok());
      return local_host
          ->SubmitBatch(kPolicyId, kTenantA, std::move(*requests))
          .get();
    };
    auto local_first = submit(one_first ? kBatchOne : kBatchTwo);
    auto local_second = submit(one_first ? kBatchTwo : kBatchOne);
    ASSERT_TRUE(local_first.ok() && local_second.ok());
    ExpectResponsesEqual(*r1, one_first ? *local_first : *local_second,
                         context + ", batch one");
    ExpectResponsesEqual(*r2, one_first ? *local_second : *local_first,
                         context + ", batch two");

    EXPECT_TRUE((*client)->Bye().ok());
    (*server)->Stop();
    EXPECT_EQ((*server)->stats().batches, 2u);
    EXPECT_EQ((*server)->stats().protocol_errors, 0u);
  }
}

TEST(NetReactorTest, ConnectionCapRejectsWithStructuredErrAndRecovers) {
  obs::MetricsRegistry registry;
  auto host = MakeHost(1, &registry);
  ServerOptions options;
  options.metrics = &registry;
  options.max_connections = 2;
  auto server = BlowfishServer::Start(host.get(), options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  auto c1 = BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantA);
  auto c2 = BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantB);
  ASSERT_TRUE(c1.ok() && c2.ok());

  // The third connection is told exactly why, then closed — a
  // structured refusal, not a silent drop or a daemon death.
  auto over = RawConn::Connect(port);
  ASSERT_TRUE(over.ok());
  const Status refused = ParseErrFrame(over->Read());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("connection limit (2)"),
            std::string::npos)
      << refused.ToString();
  EXPECT_TRUE(over->AtEof());
  EXPECT_EQ(RegistryValue(&registry, "net_connections_rejected_total"),
            1.0);
  EXPECT_EQ(RegistryValue(&registry, "net_connections_active"), 2.0);

  // Departure frees the slot (the gauge decrement is asynchronous —
  // the owner loop reaps after the close — so poll the reconnect).
  EXPECT_TRUE((*c1)->Bye().ok());
  StatusOr<std::unique_ptr<BlowfishClient>> c3 = Status::Internal("never attempted");
  ASSERT_TRUE(WaitFor(
      [&]() {
        c3 = BlowfishClient::Connect("127.0.0.1", port, kPolicyId,
                                     kTenantA);
        return c3.ok();
      },
      5000))
      << c3.status().ToString();
  auto served = (*c3)->SubmitBatchText("histogram eps=0.25\n");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE((*c3)->Bye().ok());
  EXPECT_TRUE((*c2)->Bye().ok());
}

TEST(NetReactorTest, IdleTimeoutEvictsAndFreesTheCap) {
  obs::MetricsRegistry registry;
  auto host = MakeHost(1, &registry);
  ServerOptions options;
  options.metrics = &registry;
  options.max_connections = 1;
  options.idle_timeout_ms = 100;
  auto server = BlowfishServer::Start(host.get(), options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  auto idle = RawConn::Connect(port);
  ASSERT_TRUE(idle.ok());
  idle->Send(EncodeHelloPayload(kPolicyId, kTenantA));
  EXPECT_NE(idle->Read().find(kVerbOk), std::string::npos);

  // While the occupant is alive, the cap refuses the next connection
  // with ResourceExhausted; after the eviction sweep fires, the same
  // Connect succeeds. The poll's failed attempts ARE the cap probes.
  StatusOr<std::unique_ptr<BlowfishClient>> next = Status::Internal("never attempted");
  ASSERT_TRUE(WaitFor(
      [&]() {
        next = BlowfishClient::Connect("127.0.0.1", port, kPolicyId,
                                       kTenantB);
        return next.ok();
      },
      5000))
      << next.status().ToString();
  EXPECT_EQ(RegistryValue(&registry, "net_idle_evictions_total"), 1.0);

  // The evicted peer was told why before the close.
  const Status evicted = ParseErrFrame(idle->Read());
  EXPECT_EQ(evicted.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(evicted.message().find("idle timeout"), std::string::npos)
      << evicted.ToString();
  EXPECT_TRUE(idle->AtEof());
  EXPECT_TRUE((*next)->Bye().ok());
}

TEST(NetReactorTest, TransportErrorsCountSeparatelyFromProtocolErrors) {
  obs::MetricsRegistry registry;
  auto host = MakeHost(1, &registry);
  ServerOptions options;
  options.metrics = &registry;
  auto server = BlowfishServer::Start(host.get(), options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  // A client that SPEAKS wrong: protocol error.
  {
    auto bad = RawConn::Connect(port);
    ASSERT_TRUE(bad.ok());
    bad->Send("NOTAVERB");
    EXPECT_EQ(ParseErrFrame(bad->Read()).code(),
              StatusCode::kFailedPrecondition);
  }
  // A transport that FAILS mid-stream: the peer resets (SO_LINGER 0 +
  // close forces RST, not FIN) with a frame half-sent. The old server
  // booked this as a protocol error, blinding the misbehaving-client
  // signal; it must land in its own counter.
  {
    auto dying = RawConn::Connect(port);
    ASSERT_TRUE(dying.ok());
    dying->Send(EncodeHelloPayload(kPolicyId, kTenantA));
    EXPECT_NE(dying->Read().find(kVerbOk), std::string::npos);
    const char partial[2] = {0x00, 0x00};  // half a length prefix
    ASSERT_TRUE(dying->sock.SendAll(partial, sizeof(partial)).ok());
    struct linger hard_reset;
    hard_reset.l_onoff = 1;
    hard_reset.l_linger = 0;
    ASSERT_EQ(::setsockopt(dying->sock.fd(), SOL_SOCKET, SO_LINGER,
                           &hard_reset, sizeof(hard_reset)),
              0);
  }  // ~RawConn closes the socket -> RST

  ASSERT_TRUE(WaitFor(
      [&]() {
        return RegistryValue(&registry, "net_transport_errors_total") >=
               1.0;
      },
      5000));
  (*server)->Stop();
  const BlowfishServer::Stats stats = (*server)->stats();
  EXPECT_EQ(stats.transport_errors, 1u);
  EXPECT_EQ(stats.protocol_errors, 1u);  // only the bad verb
}

TEST(NetReactorTest, AcceptLoopSurvivesFdExhaustion) {
  obs::MetricsRegistry registry;
  auto host = MakeHost(1, &registry);
  ServerOptions options;
  options.metrics = &registry;
  options.accept_retry_ms = 10;
  auto server = BlowfishServer::Start(host.get(), options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  // A connection established BEFORE the famine must keep serving
  // through it.
  auto survivor =
      BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantA);
  ASSERT_TRUE(survivor.ok());

  // Drive the process to RLIMIT_NOFILE: clamp the soft limit just
  // above current usage, then soak up every remaining slot.
  struct rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit tight = saved;
  tight.rlim_cur = static_cast<rlim_t>(CountOpenFds() + 8);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> ballast;
  for (int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC)) {
    ballast.push_back(fd);
  }
  ASSERT_EQ(errno, EMFILE);
  ASSERT_GE(ballast.size(), 4u);

  // Free exactly one slot for the client's own socket: its TCP
  // handshake completes in the kernel (listen backlog), but the
  // daemon's accept4 now fails with EMFILE.
  ::close(ballast.back());
  ballast.pop_back();
  auto pending = RawConn::Connect(port);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  ASSERT_TRUE(WaitFor(
      [&]() {
        return RegistryValue(&registry,
                             "net_accept_transient_errors_total") >= 1.0;
      },
      5000));

  // Established connections never stopped being served meanwhile (the
  // batch needs no new descriptors).
  auto through = (*survivor)->SubmitBatchText("histogram eps=0.25\n");
  ASSERT_TRUE(through.ok()) << through.status().ToString();

  // Descriptors come back; the retry timer re-arms the listener and
  // the parked handshake finally gets accepted — the daemon did NOT
  // die and did NOT wedge its accept path.
  for (int fd : ballast) ::close(fd);
  ballast.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  pending->Send(EncodeHelloPayload(kPolicyId, kTenantB));
  EXPECT_NE(pending->Read().find(kVerbOk), std::string::npos);

  // And brand-new connections accept again.
  auto fresh =
      BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantA);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE((*fresh)->Bye().ok());
  EXPECT_TRUE((*survivor)->Bye().ok());
}

TEST(NetReactorTest, SoakHoldsThousandsIdlePlusActiveOnFixedThreads) {
  // Scale the idle herd to the fd budget: both ends of every loopback
  // connection live in THIS process, so each costs two descriptors.
  // On a >=21k-fd box this runs the full 10,000; the floor asserts the
  // point regardless — thousands of connections, zero extra threads.
  struct rlimit lim;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lim), 0);
  }
  constexpr size_t kActive = 100;
  constexpr size_t kDrivers = 4;
  constexpr int kBatchesEach = 2;
  const size_t fd_budget = static_cast<size_t>(lim.rlim_cur) -
                           CountOpenFds() - 512;
  const size_t kIdle =
      std::min<size_t>(10000, fd_budget / 2 - kActive);
  ASSERT_GE(kIdle, 4000u) << "fd limit too low for a meaningful soak";

  obs::MetricsRegistry registry;
  auto host = MakeHost(4, &registry);
  ServerOptions options;
  options.metrics = &registry;
  options.io_threads = 2;
  options.accept_backlog = 512;
  auto server = BlowfishServer::Start(host.get(), options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  // The idle herd: connected, never speaking (not even HELLO). Cost
  // per connection must be one epoll registration, not one thread.
  std::vector<Socket> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    auto sock = Socket::ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(sock.ok()) << "idle connect " << i << ": "
                           << sock.status().ToString();
    idle.push_back(std::move(*sock));
  }

  // 100 active connections pipelining two tagged batches each, driven
  // by a handful of threads (the point is many CONNECTIONS, not many
  // client threads). Each client's own sessions keep budget exact.
  std::vector<std::unique_ptr<BlowfishClient>> actives(kActive);
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d]() {
      for (size_t k = d; k < kActive; k += kDrivers) {
        const char* tenant = (k % 2 == 0) ? kTenantA : kTenantB;
        const std::string session = "soak" + std::to_string(k);
        const std::string batch =
            "histogram eps=0.25 session=" + session + "\n" +
            "mean eps=0.125 session=" + session + "\n" +
            "range eps=0.25 lo=2 hi=9 session=" + session + "\n" +
            "quantiles eps=0.125 qs=0.25,0.5 session=" + session + "\n";
        auto client =
            BlowfishClient::Connect("127.0.0.1", port, kPolicyId, tenant);
        if (!client.ok()) {
          ++failures;
          continue;
        }
        std::vector<uint64_t> handles;
        for (int b = 0; b < kBatchesEach; ++b) {
          auto handle = (*client)->SubmitPipelined(batch);
          if (!handle.ok()) {
            ++failures;
            break;
          }
          handles.push_back(*handle);
        }
        for (uint64_t handle : handles) {
          auto responses = (*client)->AwaitBatch(handle);
          if (!responses.ok() || responses->size() != 4) ++failures;
        }
        actives[k] = std::move(*client);  // stays open for the snapshot
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The thread bill: io_threads(2) + engine pool(4) + this test's own
  // machinery. A thread-per-connection server would be sitting on
  // ~kIdle threads here.
  std::ifstream status("/proc/self/status");
  std::string line;
  size_t threads = 0;
  while (std::getline(status, line)) {
    if (line.compare(0, 8, "Threads:") == 0) {
      threads = std::strtoul(line.c_str() + 8, nullptr, 10);
    }
  }
  EXPECT_GT(threads, 0u);
  EXPECT_LE(threads, 64u) << "reactor must not scale threads with "
                             "connections";

  // Accepts are asynchronous; converge, then take one exact snapshot.
  ASSERT_TRUE(WaitFor(
      [&]() {
        return RegistryValue(&registry, "net_connections_total") ==
               static_cast<double>(kIdle + kActive);
      },
      10000));
  auto samples = BlowfishClient::FetchStats("127.0.0.1", port);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto metric = [&](const std::string& name) -> double {
    for (const MetricSample& sample : *samples) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "metric " << name << " missing from STATS";
    return -1.0;
  };
  // Exact arithmetic under O(10k) concurrency: the snapshot includes
  // the STATS connection itself and its one request frame (snapshot
  // precedes the METRIC reply frames).
  EXPECT_EQ(metric("net_connections_total"),
            static_cast<double>(kIdle + kActive + 1));
  EXPECT_EQ(metric("net_connections_active"),
            static_cast<double>(kIdle + kActive + 1));
  // Per active client: HELLO + kBatchesEach*(SUBMIT + 4 REQ), no BYE
  // yet; plus the STATS frame.
  EXPECT_EQ(metric("net_frames_in_total"),
            kActive * (1.0 + kBatchesEach * 5.0) + 1.0);
  // Per active client: OK + kBatchesEach*(4 RESULT + 4 RECEIPT + DONE).
  EXPECT_EQ(metric("net_frames_out_total"),
            kActive * (1.0 + kBatchesEach * 9.0));
  EXPECT_EQ(metric("net_batches_total"),
            static_cast<double>(kActive * kBatchesEach));
  EXPECT_EQ(metric("net_connections_dead_total"), 0.0);
  EXPECT_EQ(metric("net_transport_errors_total"), 0.0);
  EXPECT_EQ(metric("net_connections_rejected_total"), 0.0);
  EXPECT_EQ(metric("net_idle_evictions_total"), 0.0);
  EXPECT_EQ(metric("net_accept_transient_errors_total"), 0.0);

  for (auto& client : actives) {
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->Bye().ok());
  }
  idle.clear();  // closes 10k sockets; Stop() handles whatever remains
  (*server)->Stop();
  EXPECT_EQ((*server)->stats().protocol_errors, 0u);
  EXPECT_EQ((*server)->stats().batches, kActive * kBatchesEach);
}

TEST(NetReactorTest, EverySocketIsCloexec) {
  // exec hygiene: a forked tool (metrics dumper, config reload hook)
  // must not inherit the daemon's sockets. Everything the net layer
  // creates — listener, accepted connections, client sockets, epoll
  // and eventfd handles — carries CLOEXEC at creation (no fcntl race).
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto c1 = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                    kPolicyId, kTenantA);
  ASSERT_TRUE(c1.ok());
  auto responses = (*c1)->SubmitBatchText("histogram eps=0.25\n");
  ASSERT_TRUE(responses.ok());

  DIR* dir = ::opendir("/proc/self/fd");
  ASSERT_NE(dir, nullptr);
  size_t sockets = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0' || fd < 3) continue;
    if (fd == ::dirfd(dir)) continue;
    struct stat st;
    if (::fstat(static_cast<int>(fd), &st) != 0 || !S_ISSOCK(st.st_mode)) {
      continue;
    }
    ++sockets;
    const int flags = ::fcntl(static_cast<int>(fd), F_GETFD);
    ASSERT_GE(flags, 0);
    EXPECT_TRUE(flags & FD_CLOEXEC) << "socket fd " << fd;
  }
  ::closedir(dir);
  // Listener + accepted conn + client conn + the io loops' eventfds
  // don't stat as sockets; at least the three sockets must be there.
  EXPECT_GE(sockets, 3u);
  EXPECT_TRUE((*c1)->Bye().ok());
}

}  // namespace
}  // namespace blowfish
