// Constrained-policy parallel composition: randomized cross-checks of
// the per-cell critical-set analysis against the brute-force Def 4.1
// oracle on tiny domains (mirroring randomized_crosscheck_test.cc), plus
// hand-built fixtures where the weighted Thm 8.2 bound is exact.
//
// Four properties are certified across many fixed seeds:
//  * soundness of the analytic per-cell sensitivity: it dominates the
//    exhaustive max over all (G, Q)-neighbour pairs, for cell-restricted
//    histograms and for value-weighted sums (mean);
//  * the structural half of the refined Thm 4.3: whenever
//    ConstrainedParallelCellsValid accepts a grouping, no neighbour
//    pair's DISCRIMINATIVE set (its G^P-edge changes) touches cells of
//    two different members;
//  * the accounting half: compensating moves are NOT so confined (they
//    may land in any cell, Def 4.1 condition 3(b)), so the engine noises
//    every member of a constrained group at the UNION-cells sensitivity
//    — sound because the members' restricted histograms concatenate to
//    the union-restricted histogram, giving
//    sum_g eps_g * L1_g / S_union <= max_g eps_g for every neighbour
//    pair; the inequality sum_g L1_g <= S_union is checked exhaustively;
//  * the group-privacy move bound used by wavelet_range: no neighbour
//    pair changes more than S(h, P) / 2 tuples — counting ALL changed
//    tuples, compensations included, since each is one replacement the
//    wavelet mechanism's epsilon is scaled down for;
//  * the SIGNED scalar chain bound: for output_dim() == 1 queries the
//    weighted analysis accumulates signed per-move deltas v(y) - v(x)
//    (maximized over both orientations) instead of magnitudes, so a
//    lift's delta cancels against its compensating lower's. The signed
//    bound still dominates the oracle, never exceeds the per-move
//    magnitude bound, and is exact on the hand-built line fixture
//    where the magnitude bound over-noises by 5/3.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/constraints.h"
#include "core/neighbors.h"
#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/privacy_loss.h"
#include "core/secret_graph.h"
#include "core/sensitivity.h"
#include "mech/parallel_release.h"
#include "util/random.h"

namespace blowfish {
namespace {

constexpr uint64_t kMaxEdges = 1 << 20;
constexpr size_t kMaxVertices = 16;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

/// A partition graph from an explicit per-value cell assignment.
std::shared_ptr<const PartitionGraph> MakePartition(
    std::vector<uint64_t> cell_of) {
  const uint64_t n = cell_of.size();
  return std::make_shared<const PartitionGraph>(
      n, [cell_of](ValueIndex x) { return cell_of[x]; }, "partition|test");
}

/// Random cell assignment over `n` values into `num_cells` cells, each
/// cell non-empty.
std::vector<uint64_t> RandomCells(uint64_t n, uint64_t num_cells,
                                  Random& rng) {
  std::vector<uint64_t> cell_of(n);
  for (uint64_t x = 0; x < n; ++x) {
    cell_of[x] = x < num_cells
                     ? x
                     : static_cast<uint64_t>(rng.UniformInt(
                           0, static_cast<int64_t>(num_cells) - 1));
  }
  return cell_of;
}

/// 1-2 random interval count queries with answers pinned from a random
/// size-`n` dataset (so I_Q restricted to I_n is non-empty).
ConstraintSet RandomPinnedConstraints(
    const std::shared_ptr<const Domain>& domain, size_t n, Random& rng) {
  const int64_t size = static_cast<int64_t>(domain->size());
  std::vector<ValueIndex> tuples;
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(rng.UniformInt(0, size - 1)));
  }
  Dataset pin = Dataset::Create(domain, std::move(tuples)).value();
  ConstraintSet cs;
  const int num_queries = rng.Bernoulli(0.5) ? 1 : 2;
  for (int q = 0; q < num_queries; ++q) {
    uint64_t lo = static_cast<uint64_t>(rng.UniformInt(0, size - 1));
    uint64_t hi = static_cast<uint64_t>(rng.UniformInt(0, size - 1));
    if (lo > hi) std::swap(lo, hi);
    CountQuery query("interval" + std::to_string(q),
                     [lo, hi](ValueIndex x) { return x >= lo && x <= hi; });
    const uint64_t answer = query.Evaluate(pin);
    cs.AddWithAnswer(std::move(query), answer);
  }
  return cs;
}

/// Exhaustive S(h_cells, P): max L1 change of the cell-restricted
/// histogram over all neighbour pairs of size-n databases.
double OracleCellSensitivity(const Policy& policy,
                             const std::vector<uint64_t>& cell_of,
                             const std::set<uint64_t>& cells, size_t n) {
  auto f = [&cell_of, &cells](const Dataset& d) {
    std::vector<double> h;
    for (ValueIndex x = 0; x < d.domain().size(); ++x) {
      if (cells.count(cell_of[x]) == 0) continue;
      double count = 0.0;
      for (ValueIndex t : d.tuples()) {
        if (t == x) count += 1.0;
      }
      h.push_back(count);
    }
    return h;
  };
  return BruteForceSensitivity(policy, n, 100000, f).value();
}

class ConstrainedParallelTest : public ::testing::TestWithParam<int> {};

// Randomized: the analytic per-cell critical-set sensitivity dominates
// the exhaustive neighbour-pair maximum for every sampled cell subset.
TEST_P(ConstrainedParallelTest, PerCellSensitivityDominatesOracle) {
  Random rng(5000 + GetParam());
  const uint64_t n = 4 + GetParam() % 3;  // |T| in {4, 5, 6}
  const uint64_t num_cells = 2 + GetParam() % 2;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, num_cells, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 2, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  // Every non-empty cell subset.
  for (uint64_t mask = 1; mask < (uint64_t{1} << num_cells); ++mask) {
    std::vector<uint64_t> cells;
    for (uint64_t c = 0; c < num_cells; ++c) {
      if (mask & (uint64_t{1} << c)) cells.push_back(c);
    }
    auto analytic = ConstrainedCellHistogramSensitivity(
        policy, cells, kMaxEdges, kMaxEdges, kMaxVertices);
    if (!analytic.ok()) {
      // Non-sparse draws are refused, never served unsoundly.
      EXPECT_EQ(analytic.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    const std::set<uint64_t> cell_set(cells.begin(), cells.end());
    const double oracle =
        OracleCellSensitivity(policy, cell_of, cell_set, 2);
    EXPECT_LE(oracle, *analytic + 1e-9)
        << "seed " << GetParam() << " mask " << mask;
  }
}

// Randomized: the mean / value-weighted-sum chain bound dominates the
// exhaustive oracle.
TEST_P(ConstrainedParallelTest, ValueWeightedChainBoundDominatesOracle) {
  Random rng(6000 + GetParam());
  const uint64_t n = 4 + GetParam() % 3;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, 2, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 2, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  ValueWeightedSumQuery query(
      [](ValueIndex x) { return static_cast<double>(x); });
  auto analytic = ConstrainedLinearQuerySensitivity(
      query, policy, kMaxEdges, kMaxEdges, kMaxVertices);
  if (!analytic.ok()) {
    EXPECT_EQ(analytic.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  auto sum = [](const Dataset& d) {
    double total = 0.0;
    for (ValueIndex t : d.tuples()) total += static_cast<double>(t);
    return std::vector<double>{total};
  };
  const double oracle = BruteForceSensitivity(policy, 2, 100000, sum).value();
  EXPECT_LE(oracle, *analytic + 1e-9) << "seed " << GetParam();
}

/// The old per-move-magnitude chain bound for a scalar value-weighted
/// query, recomputed through the public WeightedPolicyGraph API with
/// weight |v(y) - v(x)|: what ConstrainedLinearQuerySensitivity charged
/// before the signed refinement.
StatusOr<double> MagnitudeChainBound(const Policy& policy) {
  BLOWFISH_ASSIGN_OR_RETURN(
      WeightedPolicyGraph wpg,
      WeightedPolicyGraph::Build(
          policy.constraints(), policy.graph(), policy.domain().size(),
          [](ValueIndex x, ValueIndex y) {
            return std::fabs(static_cast<double>(y) -
                             static_cast<double>(x));
          },
          kMaxEdges));
  return wpg.NeighborStepBound(kMaxVertices);
}

// Randomized: the signed scalar refinement is a pure tightening — the
// bound ConstrainedLinearQuerySensitivity now returns for a scalar
// query never exceeds the per-move-magnitude bound it used to return
// (a signed delta sum is pointwise <= the magnitude sum, and edge
// pairs are a subset of all pairs, so the mandatory-edge penalty stays
// non-negative), while still dominating the exhaustive oracle
// (certified by ValueWeightedChainBoundDominatesOracle above on the
// same fixture distribution).
TEST_P(ConstrainedParallelTest, SignedScalarBoundTightensMagnitudeBound) {
  Random rng(6000 + GetParam());  // same draws as the oracle harness
  const uint64_t n = 4 + GetParam() % 3;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, 2, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 2, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  ValueWeightedSumQuery query(
      [](ValueIndex x) { return static_cast<double>(x); });
  auto signed_bound = ConstrainedLinearQuerySensitivity(
      query, policy, kMaxEdges, kMaxEdges, kMaxVertices);
  auto magnitude = MagnitudeChainBound(policy);
  ASSERT_EQ(signed_bound.ok(), magnitude.ok());
  if (!signed_bound.ok()) {
    EXPECT_EQ(signed_bound.status().code(),
              StatusCode::kFailedPrecondition);
    return;
  }
  EXPECT_LE(*signed_bound, *magnitude + 1e-9) << "seed " << GetParam();
}

// Randomized structural harness for the refined Thm 4.3: when the
// predicate accepts a grouping, exhaustive enumeration of N(P) finds no
// neighbour pair whose DISCRIMINATIVE changes (G^P-edge moves — the
// secret pairs actually protected) touch two different members' cell
// sets. Compensating moves are deliberately not counted here: they can
// land in any cell, which is why a constrained group's noise is
// calibrated to the union-cells sensitivity (next test), not per
// member.
TEST_P(ConstrainedParallelTest, AcceptedGroupingsNeverStraddledByNeighbors) {
  Random rng(7000 + GetParam());
  const uint64_t n = 4 + GetParam() % 3;
  const uint64_t num_cells = 2 + GetParam() % 2;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, num_cells, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 2, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  // Random 2-way split of the cells into member cell sets.
  std::vector<std::vector<uint64_t>> members(2);
  for (uint64_t c = 0; c < num_cells; ++c) {
    members[rng.Bernoulli(0.5) ? 1 : 0].push_back(c);
  }
  if (members[0].empty() || members[1].empty()) return;

  auto valid =
      ConstrainedParallelCellsValid(policy, members, kMaxEdges);
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  if (!*valid) return;  // conservative refusals are always allowed

  auto neighborhood = EnumerateNeighbors(policy, 2, 100000).value();
  for (const auto& [i, j] : neighborhood.neighbor_pairs) {
    const Dataset& d1 = neighborhood.universe[i];
    const Dataset& d2 = neighborhood.universe[j];
    std::set<size_t> touched_members;
    for (const auto& [id, x, y] : DiscriminativeSet(policy, d1, d2)) {
      (void)id;
      (void)y;  // y shares x's cell: G^P edges stay inside one cell
      for (size_t m = 0; m < members.size(); ++m) {
        if (std::find(members[m].begin(), members[m].end(), cell_of[x]) !=
            members[m].end()) {
          touched_members.insert(m);
        }
      }
    }
    EXPECT_LE(touched_members.size(), 1u)
        << "seed " << GetParam()
        << ": an accepted grouping is straddled by a neighbour pair";
  }
}

// Randomized accounting harness: the union-cells sensitivity every
// member of a constrained parallel group is noised at makes max-epsilon
// composition sound. The members' cell-restricted histograms are a
// disjoint row split of the union-restricted histogram, so for every
// exhaustively enumerated neighbour pair
//   sum_g ||f_g(D1) - f_g(D2)||_1 = ||f_union(D1) - f_union(D2)||_1
//                                 <= S_union,
// and a Laplace release of each member at scale S_union / eps_g loses
// sum_g eps_g L1_g / S_union <= max_g eps_g in total.
TEST_P(ConstrainedParallelTest, UnionSensitivityCoversGroupLoss) {
  Random rng(9000 + GetParam());
  const uint64_t n = 4 + GetParam() % 3;
  const uint64_t num_cells = 2 + GetParam() % 2;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, num_cells, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 2, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  std::vector<std::vector<uint64_t>> members(2);
  for (uint64_t c = 0; c < num_cells; ++c) {
    members[rng.Bernoulli(0.5) ? 1 : 0].push_back(c);
  }
  if (members[0].empty() || members[1].empty()) return;

  std::vector<uint64_t> union_cells;
  for (const auto& m : members) {
    union_cells.insert(union_cells.end(), m.begin(), m.end());
  }
  std::sort(union_cells.begin(), union_cells.end());
  auto s_union = ConstrainedCellHistogramSensitivity(
      policy, union_cells, kMaxEdges, kMaxEdges, kMaxVertices);
  if (!s_union.ok()) {
    EXPECT_EQ(s_union.status().code(), StatusCode::kFailedPrecondition);
    return;
  }

  auto neighborhood = EnumerateNeighbors(policy, 2, 100000).value();
  for (const auto& [i, j] : neighborhood.neighbor_pairs) {
    const Dataset& d1 = neighborhood.universe[i];
    const Dataset& d2 = neighborhood.universe[j];
    double total_l1 = 0.0;
    for (const auto& m : members) {
      const std::set<uint64_t> cell_set(m.begin(), m.end());
      auto restricted = [&](const Dataset& d) {
        std::vector<double> h;
        for (ValueIndex x = 0; x < d.domain().size(); ++x) {
          if (cell_set.count(cell_of[x]) == 0) continue;
          double count = 0.0;
          for (ValueIndex t : d.tuples()) {
            if (t == x) count += 1.0;
          }
          h.push_back(count);
        }
        return h;
      };
      std::vector<double> h1 = restricted(d1);
      std::vector<double> h2 = restricted(d2);
      for (size_t r = 0; r < h1.size(); ++r) {
        total_l1 += std::fabs(h1[r] - h2[r]);
      }
    }
    EXPECT_LE(total_l1, *s_union + 1e-9) << "seed " << GetParam();
  }
}

// Randomized: the wavelet_range group-privacy calibration is sound — no
// neighbour pair changes more than S(h, P) / 2 tuples, counting every
// changed tuple (compensating non-edge moves included: each one is a
// replacement the wavelet mechanism's internal epsilon must absorb).
TEST_P(ConstrainedParallelTest, HistogramBoundDominatesMoveCount) {
  Random rng(8000 + GetParam());
  const uint64_t n = 4 + GetParam() % 2;
  auto domain = LineDomain(n);
  std::vector<uint64_t> cell_of = RandomCells(n, 2, rng);
  ConstraintSet cs = RandomPinnedConstraints(domain, 3, rng);
  Policy policy =
      Policy::Create(domain, MakePartition(cell_of), std::move(cs)).value();

  CompleteHistogramQuery h(n);
  auto bound = ConstrainedLinearQuerySensitivity(h, policy, kMaxEdges, kMaxEdges,
                                                 kMaxVertices);
  if (!bound.ok()) {
    EXPECT_EQ(bound.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  auto neighborhood = EnumerateNeighbors(policy, 3, 100000).value();
  for (const auto& [i, j] : neighborhood.neighbor_pairs) {
    const Dataset& d1 = neighborhood.universe[i];
    const Dataset& d2 = neighborhood.universe[j];
    size_t moves = 0;
    for (size_t id = 0; id < d1.size(); ++id) {
      if (d1.tuple(id) != d2.tuple(id)) ++moves;
    }
    EXPECT_LE(static_cast<double>(moves), *bound / 2.0 + 1e-9)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedParallelTest,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Hand-built fixtures where the weighted bound is exact.

/// Line(6), cells {0,1,2,3} and {4,5}, one pinned count of {1,2}:
/// critical only inside cell 0, so cell 1 stays a free cell.
Policy CoupledCellFixture(const std::shared_ptr<const Domain>& domain) {
  std::vector<uint64_t> cell_of{0, 0, 0, 0, 1, 1};
  ConstraintSet cs;
  cs.AddWithAnswer(
      CountQuery("mid", [](ValueIndex x) { return x == 1 || x == 2; }), 1);
  return Policy::Create(domain, MakePartition(cell_of), std::move(cs))
      .value();
}

TEST(ConstrainedCellFixtureTest, AnalyticMatchesOracleExactly) {
  auto domain = LineDomain(6);
  Policy policy = CoupledCellFixture(domain);
  const std::vector<uint64_t> cell_of{0, 0, 0, 0, 1, 1};

  struct Case {
    std::vector<uint64_t> cells;
    double analytic;
    double oracle;
  };
  // Cell 0 analytic: a lift (e.g. 0 -> 1) plus a compensating lower,
  // each up to weight 2: 4. The oracle realizes only 3: the pure
  // two-G-edge chain {0 -> 1, 2 -> 3} is disqualified by Def 4.1
  // condition 3(a) — compensating CROSS-CELL (2 -> 4 is not a G^P
  // edge) yields I_Q membership with a strictly smaller discriminative
  // set — and the surviving steps pair a weight-2 in-cell move with a
  // weight-1 cross-cell compensation. The bound stays sound (4 >= 3);
  // tightening it would require modeling T-minimality, which is what
  // the brute-force oracle is for. Cell 1: one free in-cell move (4),
  // analytic = oracle = 2: chains reach it only through weight-1
  // cross-cell endpoints. Both cells: every compensation endpoint is
  // included, so analytic = oracle = 4.
  for (const Case& c : {Case{{0}, 4.0, 3.0}, Case{{1}, 2.0, 2.0},
                        Case{{0, 1}, 4.0, 4.0}}) {
    auto analytic = ConstrainedCellHistogramSensitivity(
        policy, c.cells, kMaxEdges, kMaxEdges, kMaxVertices);
    ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
    EXPECT_DOUBLE_EQ(*analytic, c.analytic);
    const std::set<uint64_t> cell_set(c.cells.begin(), c.cells.end());
    const double oracle = OracleCellSensitivity(policy, cell_of, cell_set, 2);
    EXPECT_DOUBLE_EQ(oracle, c.oracle);
    EXPECT_LE(oracle, *analytic);
  }
}

TEST(ConstrainedCellFixtureTest, PredicateConfinedVsStraddling) {
  auto domain = LineDomain(6);
  Policy confined = CoupledCellFixture(domain);
  // The constraint's only coupled component is {cell 0}: a grouping
  // with one member per cell is accepted...
  EXPECT_TRUE(
      ConstrainedParallelCellsValid(confined, {{0}, {1}}, kMaxEdges)
          .value());

  // ...but a constraint critical in both cells couples them into one
  // component, and the same grouping is refused.
  std::vector<uint64_t> cell_of{0, 0, 0, 0, 1, 1};
  ConstraintSet straddling;
  straddling.AddWithAnswer(
      CountQuery("both", [](ValueIndex x) { return x == 1 || x == 4; }), 1);
  Policy coupled = Policy::Create(domain, MakePartition(cell_of),
                                  std::move(straddling))
                       .value();
  EXPECT_FALSE(
      ConstrainedParallelCellsValid(coupled, {{0}, {1}}, kMaxEdges)
          .value());
  // The strict uniform-secrets check refuses even the confined policy:
  // the refinement is strictly more permissive.
  EXPECT_FALSE(ParallelCompositionValid(confined, kMaxEdges).value());
}

TEST(ConstrainedCellFixtureTest, CriticalSetsAndComponents) {
  auto domain = LineDomain(6);
  Policy policy = CoupledCellFixture(domain);
  const auto* partition =
      dynamic_cast<const PartitionGraph*>(&policy.graph());
  ASSERT_NE(partition, nullptr);
  auto crit = ComputeCellCriticalSets(policy.constraints(), *partition,
                                      kMaxEdges)
                  .value();
  ASSERT_EQ(crit.critical_cells.size(), 1u);
  EXPECT_EQ(crit.critical_cells[0], std::vector<uint64_t>{0});
  ASSERT_EQ(crit.component_cells.size(), 1u);
  EXPECT_EQ(crit.component_cells[0], std::vector<uint64_t>{0});
  EXPECT_EQ(crit.component_queries[0], std::vector<size_t>{0});
  EXPECT_EQ(crit.ComponentOfCell(0), std::optional<size_t>{0});
  EXPECT_EQ(crit.ComponentOfCell(1), std::nullopt);
}

TEST(SignedScalarFixtureTest, SignedBoundExactWhereMagnitudeOverNoises) {
  // Line(5) under the LINE secret graph, v(x) = x, one pinned count of
  // {2, 3, 4}. A neighbour step crossing the constraint pairs a lift
  // with a compensating lower, at least one of them a G edge:
  //  * magnitude bound: edge lift 1 -> 2 (weight 1) + any lower 4 -> 0
  //    (weight 4) = 5 — equivalently any-lift 4 minus the lift penalty
  //    (any 4 - edge 1 = 3) plus any-lower 4;
  //  * signed bound: the lift's positive delta cancels against the
  //    lower's negative one. s = +1: any lift 0 -> 4 (+4) + best lower
  //    2 -> 1 (-1), edge-lower penalty 0, = 3; s = -1 is symmetric.
  // The oracle realizes exactly 3 ({1, 4} vs {2, 0}: 1 -> 2 is the
  // edge, 4 -> 0 the compensation, net |2 + 0 - 1 - 4| = 3), so the
  // signed bound is EXACT here while the magnitude bound over-noises
  // by 5/3.
  auto domain = LineDomain(5);
  ConstraintSet cs;
  cs.AddWithAnswer(
      CountQuery("mid", [](ValueIndex x) { return x >= 2 && x <= 4; }), 1);
  Policy policy =
      Policy::Create(domain, std::make_shared<LineGraph>(5), std::move(cs))
          .value();

  ValueWeightedSumQuery query(
      [](ValueIndex x) { return static_cast<double>(x); });
  auto signed_bound = ConstrainedLinearQuerySensitivity(
      query, policy, kMaxEdges, kMaxEdges, kMaxVertices);
  ASSERT_TRUE(signed_bound.ok()) << signed_bound.status().ToString();
  EXPECT_DOUBLE_EQ(*signed_bound, 3.0);

  auto magnitude = MagnitudeChainBound(policy);
  ASSERT_TRUE(magnitude.ok()) << magnitude.status().ToString();
  EXPECT_DOUBLE_EQ(*magnitude, 5.0);

  auto sum = [](const Dataset& d) {
    double total = 0.0;
    for (ValueIndex t : d.tuples()) total += static_cast<double>(t);
    return std::vector<double>{total};
  };
  const double oracle =
      BruteForceSensitivity(policy, 2, 100000, sum).value();
  EXPECT_DOUBLE_EQ(oracle, 3.0);
}

TEST(ConstrainedCellFixtureTest, MechParallelCellReleaseEndToEnd) {
  auto domain = LineDomain(6);
  Policy policy = CoupledCellFixture(domain);
  Dataset data = Dataset::Create(domain, {0, 2, 3, 4, 4, 5}).value();
  Random rng(42);
  PrivacyAccountant acct;
  auto result = ParallelCellHistogramRelease(data, policy, {{0}, {1}},
                                             {0.5, 0.3}, rng, &acct);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->group_histograms.size(), 2u);
  EXPECT_EQ(result->group_histograms[0].size(), 4u);  // values 0..3
  EXPECT_EQ(result->group_histograms[1].size(), 2u);  // values 4..5
  // Constrained groups share the union-cells scale (S_union = 4 here):
  // a compensating move can carry a tuple from cell 0 into cell 1, so
  // noising cell 1 at its solo sensitivity 2 would under-cover the
  // joint loss at the max-epsilon charge.
  EXPECT_DOUBLE_EQ(result->group_sensitivities[0], 4.0);
  EXPECT_DOUBLE_EQ(result->group_sensitivities[1], 4.0);
  // One parallel charge of max(eps).
  EXPECT_DOUBLE_EQ(result->total_epsilon, 0.5);
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 0.5);

  // An all-free group (unconstrained singleton cells: no in-cell edge,
  // no compensation) releases exact truths and charges nothing.
  auto free_domain = LineDomain(2);
  Policy free_policy =
      Policy::Create(free_domain, MakePartition({0, 1})).value();
  Dataset free_data = Dataset::Create(free_domain, {0, 1, 1}).value();
  PrivacyAccountant free_acct;
  auto free_result = ParallelCellHistogramRelease(
      free_data, free_policy, {{0}, {1}}, {0.5, 0.3}, rng, &free_acct);
  ASSERT_TRUE(free_result.ok()) << free_result.status().ToString();
  EXPECT_DOUBLE_EQ(free_result->group_sensitivities[0], 0.0);
  EXPECT_DOUBLE_EQ(free_result->group_sensitivities[1], 0.0);
  EXPECT_EQ(free_result->group_histograms[0], std::vector<double>{1.0});
  EXPECT_EQ(free_result->group_histograms[1], std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(free_result->total_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(free_acct.TotalEpsilon(), 0.0);

  // A straddling constraint is refused outright.
  std::vector<uint64_t> cell_of{0, 0, 0, 0, 1, 1};
  ConstraintSet straddling;
  straddling.AddWithAnswer(
      CountQuery("both", [](ValueIndex x) { return x == 1 || x == 4; }), 1);
  Policy coupled = Policy::Create(domain, MakePartition(cell_of),
                                  std::move(straddling))
                       .value();
  EXPECT_EQ(ParallelCellHistogramRelease(data, coupled, {{0}, {1}},
                                         {0.5, 0.3}, rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace blowfish
