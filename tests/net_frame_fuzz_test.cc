// Protocol fuzz battery for the wire layer's pure parsing surfaces:
// the frame decoder (net/frame.h) and the message / response parsers
// (net/protocol.h). Every input — random byte soup, truncated or
// length-mutated valid streams, random chunkings — must yield either
// frames or one sticky structured error: never a crash, hang, or
// over-read (the suite runs under the ASan/UBSan CI job, where an
// over-read is a finding, not a silent pass).
//
// All randomness is seeded Random::Fork streams, so a failure replays
// from the iteration index printed by the assertion.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/batch_request.h"
#include "net/protocol.h"
#include "util/random.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;

std::string RandomBytes(Random& rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  return out;
}

/// Decodes everything in `input`, fed in the chunk sizes `rng` picks,
/// pumping the decoder dry between feeds. Returns the frames; *error
/// gets the sticky error (OK if none).
std::vector<std::string> DecodeChunked(const std::string& input,
                                       Random& rng, size_t max_chunk,
                                       Status* error) {
  FrameDecoder decoder;
  std::vector<std::string> frames;
  size_t pos = 0;
  while (pos < input.size()) {
    const size_t chunk = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(max_chunk)));
    const size_t len = std::min(chunk, input.size() - pos);
    decoder.Feed(input.data() + pos, len);
    pos += len;
    std::string payload;
    while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
      frames.push_back(payload);
    }
    // Drained: the buffer holds at most one incomplete frame.
    if (decoder.error().ok()) {
      EXPECT_LT(decoder.buffered(), 4 + kMaxFramePayload);
    }
  }
  *error = decoder.error();
  return frames;
}

TEST(NetFrameFuzzTest, RandomByteSoupNeverCrashes) {
  Random root(kSeed);
  for (uint64_t iter = 0; iter < 4000; ++iter) {
    Random rng = root.Fork(iter);
    const size_t len =
        static_cast<size_t>(rng.UniformInt(0, 2048));
    const std::string input = RandomBytes(rng, len);
    Status error;
    std::vector<std::string> frames =
        DecodeChunked(input, rng, 64, &error);
    // Everything decoded came out of the input: no over-read can
    // manufacture bytes.
    size_t total = 0;
    for (const std::string& f : frames) {
      total += 4 + f.size();
      ASSERT_LE(f.size(), kMaxFramePayload) << "iteration " << iter;
    }
    ASSERT_LE(total, input.size()) << "iteration " << iter;
    if (!error.ok()) {
      // Structured: the only way a byte stream can fail framing is an
      // oversized length prefix.
      ASSERT_EQ(error.code(), StatusCode::kInvalidArgument)
          << "iteration " << iter;
    }
  }
}

TEST(NetFrameFuzzTest, ChunkingNeverChangesTheFrameSequence) {
  Random root(kSeed + 1);
  for (uint64_t iter = 0; iter < 2000; ++iter) {
    Random rng = root.Fork(iter);
    // A stream of valid frames, optionally truncated mid-frame.
    std::string stream;
    std::vector<std::string> sent;
    const int num_frames = static_cast<int>(rng.UniformInt(0, 8));
    for (int f = 0; f < num_frames; ++f) {
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 300));
      sent.push_back(RandomBytes(rng, len));
      stream += EncodeFrame(sent.back());
    }
    if (rng.Bernoulli(0.5) && !stream.empty()) {
      const size_t keep = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(stream.size())));
      stream.resize(keep);
    }

    Status error_a;
    Random chunk_a = rng.Fork(1);
    std::vector<std::string> frames_a =
        DecodeChunked(stream, chunk_a, 7, &error_a);
    Status error_b;
    Random chunk_b = rng.Fork(2);
    std::vector<std::string> frames_b =
        DecodeChunked(stream, chunk_b, 1024, &error_b);

    ASSERT_EQ(frames_a.size(), frames_b.size()) << "iteration " << iter;
    for (size_t i = 0; i < frames_a.size(); ++i) {
      ASSERT_EQ(frames_a[i], frames_b[i]) << "iteration " << iter;
    }
    ASSERT_EQ(error_a.ok(), error_b.ok()) << "iteration " << iter;
    // An untruncated stream decodes completely.
    for (size_t i = 0; i < frames_a.size(); ++i) {
      ASSERT_EQ(frames_a[i], sent[i]) << "iteration " << iter;
    }
  }
}

TEST(NetFrameFuzzTest, MutatedValidStreamsFailStructurally) {
  Random root(kSeed + 2);
  for (uint64_t iter = 0; iter < 2000; ++iter) {
    Random rng = root.Fork(iter);
    std::string stream;
    const int num_frames = static_cast<int>(rng.UniformInt(1, 6));
    for (int f = 0; f < num_frames; ++f) {
      stream += EncodeFrame(
          RandomBytes(rng, static_cast<size_t>(rng.UniformInt(0, 200))));
    }
    // Flip one byte anywhere — including the length prefixes, which is
    // how oversized/misaligned frames are born.
    const size_t at = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(stream.size()) - 1));
    stream[at] = static_cast<char>(rng.UniformInt(0, 255));

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    std::string payload;
    FrameDecoder::Result result;
    size_t frames = 0;
    while ((result = decoder.Next(&payload)) ==
           FrameDecoder::Result::kFrame) {
      ASSERT_LE(payload.size(), kMaxFramePayload) << "iteration " << iter;
      ASSERT_LE(++frames, stream.size()) << "iteration " << iter;
    }
    if (result == FrameDecoder::Result::kError) {
      ASSERT_FALSE(decoder.error().ok());
      // Sticky: feeding more does not resurrect the stream.
      decoder.Feed(stream.data(), stream.size());
      ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Result::kError);
    }
  }
}

TEST(NetFrameFuzzTest, WireMessageParserNeverCrashes) {
  Random root(kSeed + 3);
  uint64_t parsed_ok = 0;
  for (uint64_t iter = 0; iter < 2000; ++iter) {
    Random rng = root.Fork(iter);
    std::string payload;
    if (rng.Bernoulli(0.5)) {
      payload = RandomBytes(
          rng, static_cast<size_t>(rng.UniformInt(0, 256)));
    } else {
      // Plausible-looking messages stress the key=value and %XX paths
      // harder than raw bytes.
      static const char* kPieces[] = {"RESULT",  "i=",      "0",
                                      " ",       "code=",   "OK",
                                      "values=", "1.5,2.5", "%",
                                      "2",       "G",       "=",
                                      "msg=",    "%ZZ",     "%2"};
      const int pieces = static_cast<int>(rng.UniformInt(0, 12));
      for (int p = 0; p < pieces; ++p) {
        payload +=
            kPieces[rng.UniformInt(0, 14)];
      }
    }
    auto msg = ParseWireMessage(payload);
    if (!msg.ok()) continue;
    ++parsed_ok;
    // Whatever parsed also survives the typed accessors and the
    // response parser without crashing (errors are fine).
    Status carried;
    (void)ParseStatusFields(*msg, &carried);
    (void)ParseResultPayload(*msg);
    size_t index;
    BudgetReceipt receipt;
    (void)ParseReceiptPayload(*msg, &index, &receipt);
  }
  // The grammar-ish generator must actually exercise the success path.
  EXPECT_GT(parsed_ok, 100u);
}

TEST(NetFrameFuzzTest, EscapeRoundTripsArbitraryBytes) {
  Random root(kSeed + 4);
  for (uint64_t iter = 0; iter < 1000; ++iter) {
    Random rng = root.Fork(iter);
    const std::string raw =
        RandomBytes(rng, static_cast<size_t>(rng.UniformInt(0, 128)));
    const std::string escaped = EscapeWireField(raw);
    for (unsigned char c : escaped) {
      ASSERT_TRUE(c > 0x20 && c < 0x7f) << "iteration " << iter;
    }
    auto back = UnescapeWireField(escaped);
    ASSERT_TRUE(back.ok()) << "iteration " << iter;
    ASSERT_EQ(*back, raw) << "iteration " << iter;
  }
}

TEST(NetFrameFuzzTest, DeterministicEdgeCases) {
  // Oversized length prefix poisons with a structured error.
  FrameDecoder decoder;
  const char oversized[4] = {0x7f, 0x00, 0x00, 0x00};  // ~2 GiB claim
  decoder.Feed(oversized, sizeof(oversized));
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error().code(), StatusCode::kInvalidArgument);
  // Sticky.
  decoder.Feed("more", 4);
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Result::kError);

  // A partial frame waits; the rest completes it.
  FrameDecoder partial;
  const std::string frame = EncodeFrame("hello");
  partial.Feed(frame.data(), 6);
  EXPECT_EQ(partial.Next(&payload), FrameDecoder::Result::kNeedMore);
  partial.Feed(frame.data() + 6, frame.size() - 6);
  EXPECT_EQ(partial.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(partial.Next(&payload), FrameDecoder::Result::kNeedMore);

  // Zero-length frames are legal at the framing layer (the protocol
  // layer rejects the empty message).
  FrameDecoder empty;
  const std::string zero = EncodeFrame("");
  empty.Feed(zero.data(), zero.size());
  EXPECT_EQ(empty.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(ParseWireMessage("").status().code(),
            StatusCode::kInvalidArgument);

  // The exact cap is legal; one byte past it is not.
  const std::string at_cap(kMaxFramePayload, 'x');
  FrameDecoder cap_ok;
  const std::string cap_frame = EncodeFrame(at_cap);
  cap_ok.Feed(cap_frame.data(), cap_frame.size());
  EXPECT_EQ(cap_ok.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload.size(), kMaxFramePayload);

  FrameDecoder cap_over;
  const uint32_t over = static_cast<uint32_t>(kMaxFramePayload) + 1;
  const char over_prefix[4] = {
      static_cast<char>((over >> 24) & 0xff),
      static_cast<char>((over >> 16) & 0xff),
      static_cast<char>((over >> 8) & 0xff),
      static_cast<char>(over & 0xff)};
  cap_over.Feed(over_prefix, sizeof(over_prefix));
  EXPECT_EQ(cap_over.Next(&payload), FrameDecoder::Result::kError);
}

TEST(NetFrameFuzzTest, QuantilesQsListIsBoundCheckedAtParseTime) {
  // The `qs=` list must be rejected STRUCTURALLY at parse time — empty,
  // out-of-[0,1], or non-strictly-increasing lists never reach
  // admission (where they would be refused only after the request is
  // already minted). This is the wire-facing surface: a daemon parses
  // hostile batch text straight off a frame.
  auto expect_invalid = [](const std::string& qs) {
    auto requests =
        ParseBatchRequests("quantiles eps=0.25 qs=" + qs + "\n");
    ASSERT_FALSE(requests.ok()) << "qs=" << qs;
    EXPECT_EQ(requests.status().code(), StatusCode::kInvalidArgument)
        << "qs=" << qs;
    EXPECT_NE(requests.status().message().find("'qs'"), std::string::npos)
        << requests.status().ToString();
  };
  expect_invalid("");         // present-but-empty list
  expect_invalid("0.5,0.2");  // non-monotone
  expect_invalid("0.5,0.5");  // must be STRICTLY increasing
  expect_invalid("1.5");      // out of [0, 1]
  expect_invalid("-0.1");
  expect_invalid("nan");      // non-finite never parses
  expect_invalid(",0.5");     // leading comma -> empty token

  // The closed endpoints are legal, as is omitting qs entirely.
  EXPECT_TRUE(ParseBatchRequests("quantiles eps=0.25 qs=0,0.5,1\n").ok());
  EXPECT_TRUE(ParseBatchRequests("quantiles eps=0.25\n").ok());

  // Seeded fuzz: the parser's accept/reject decision must exactly match
  // the declared grammar (finite doubles, strictly increasing, within
  // [0, 1], non-empty) — and never crash on any generated list.
  Random root(kSeed + 5);
  uint64_t accepted = 0;
  for (uint64_t iter = 0; iter < 2000; ++iter) {
    Random rng = root.Fork(iter);
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    std::vector<double> values;
    std::string qs;
    for (int i = 0; i < n; ++i) {
      // Mostly in-range draws so ascending in-range lists actually
      // occur; the tails exercise the bound checks.
      const double v = rng.Bernoulli(0.8) ? rng.Uniform(0.0, 1.0)
                                          : rng.Uniform(-0.5, 1.5);
      values.push_back(v);
      if (i > 0) qs += ",";
      qs += std::to_string(v);  // fixed 6-decimal tokens, always finite
    }
    // What the parser actually sees: the values after one decimal
    // round-trip (to_string may collapse close neighbours to equal
    // tokens, which the strict-monotonicity check must then reject).
    std::vector<double> seen;
    for (double v : values) seen.push_back(std::stod(std::to_string(v)));
    bool valid = true;
    for (size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] < 0.0 || seen[i] > 1.0) valid = false;
      if (i > 0 && seen[i] <= seen[i - 1]) valid = false;
    }
    auto requests =
        ParseBatchRequests("quantiles eps=0.25 qs=" + qs + "\n");
    ASSERT_EQ(requests.ok(), valid)
        << "iteration " << iter << " qs=" << qs << ": "
        << requests.status().ToString();
    if (requests.ok()) ++accepted;
  }
  // The generator must exercise both verdicts heavily.
  EXPECT_GT(accepted, 200u);
  EXPECT_LT(accepted, 1800u);
}

TEST(NetFrameFuzzTest, UintFieldsRejectSignAndWhitespaceSmuggling) {
  // strtoull skips leading whitespace and wraps negatives, so the
  // parser must insist on a leading digit: an escaped " -5" is
  // malformed, not 18446744073709551611.
  auto expect_bad = [](const std::string& payload) {
    auto msg = ParseWireMessage(payload);
    ASSERT_TRUE(msg.ok()) << payload;
    EXPECT_EQ(GetUintField(*msg, "n").status().code(),
              StatusCode::kInvalidArgument)
        << payload;
  };
  expect_bad("X n=%20-5");  // unescapes to " -5"
  expect_bad("X n=%09-5");  // unescapes to "\t-5"
  expect_bad("X n=-5");
  expect_bad("X n=+5");
  expect_bad("X n=5x");

  auto msg = ParseWireMessage("X n=42");
  ASSERT_TRUE(msg.ok());
  auto value = GetUintField(*msg, "n");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42u);
}

}  // namespace
}  // namespace blowfish
