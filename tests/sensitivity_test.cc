#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/neighbors.h"

namespace blowfish {
namespace {

constexpr uint64_t kMaxEdges = uint64_t{1} << 22;

std::shared_ptr<const Domain> MakeLine(uint64_t size, double scale = 1.0) {
  return std::make_shared<const Domain>(Domain::Line(size, scale).value());
}

std::shared_ptr<const Domain> MakeGrid(uint64_t m, size_t k,
                                       double scale = 1.0) {
  return std::make_shared<const Domain>(Domain::Grid(m, k, scale).value());
}

// --- Generic engine against closed forms ---

TEST(SensitivityTest, CompleteHistogramIsTwo) {
  auto dom = MakeLine(8);
  CompleteHistogramQuery q(dom->size());
  FullGraph full(dom->size());
  LineGraph line(dom->size());
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, full, kMaxEdges).value(), 2.0);
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, line, kMaxEdges).value(), 2.0);
  EXPECT_DOUBLE_EQ(HistogramSensitivity(full), 2.0);
}

TEST(SensitivityTest, EdgelessGraphGivesZero) {
  auto g = ExplicitGraph::Create(4, {}).value();
  CompleteHistogramQuery q(4);
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, *g, kMaxEdges).value(), 0.0);
  EXPECT_DOUBLE_EQ(HistogramSensitivity(*g), 0.0);
}

// Sec 5: a partitioned histogram under G^P (same partition) has
// sensitivity 0 — "the histogram of P can be released without any noise".
TEST(SensitivityTest, PartitionedHistogramUnderMatchingPartitionIsZero) {
  auto dom = MakeLine(8);
  auto part = PartitionGraph::UniformGrid(dom, {2}).value();
  PartitionedHistogramQuery q(
      [&part = *part](ValueIndex x) { return part.CellOf(x); }, 2);
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, *part, kMaxEdges).value(),
                   0.0);
  // Under the full graph the same query costs 2.
  FullGraph full(dom->size());
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, full, kMaxEdges).value(), 2.0);
}

TEST(SensitivityTest, CumulativeHistogramClosedForms) {
  auto dom = MakeLine(10);
  Policy line = Policy::Line(dom).value();
  Policy full = Policy::FullDomain(dom).value();
  Policy theta3 = Policy::DistanceThreshold(dom, 3.0).value();
  EXPECT_DOUBLE_EQ(CumulativeHistogramSensitivity(line).value(), 1.0);
  EXPECT_DOUBLE_EQ(CumulativeHistogramSensitivity(full).value(), 9.0);
  EXPECT_DOUBLE_EQ(CumulativeHistogramSensitivity(theta3).value(), 3.0);
}

TEST(SensitivityTest, CumulativeHistogramScaledDomain) {
  // Salary domain with $50 buckets; theta = $175 covers 3 buckets.
  auto dom = MakeLine(100, 50.0);
  Policy p = Policy::DistanceThreshold(dom, 175.0).value();
  EXPECT_DOUBLE_EQ(CumulativeHistogramSensitivity(p).value(), 3.0);
}

TEST(SensitivityTest, CumulativeHistogramRejects2D) {
  auto grid = MakeGrid(4, 2);
  Policy p = Policy::FullDomain(grid).value();
  EXPECT_FALSE(CumulativeHistogramSensitivity(p).ok());
}

TEST(SensitivityTest, CumulativeClosedFormMatchesGenericEngine) {
  auto dom = MakeLine(12);
  for (double theta : {1.0, 2.0, 5.0, 11.0, 20.0}) {
    Policy p = Policy::DistanceThreshold(dom, theta).value();
    CumulativeHistogramQuery q(dom->size());
    double generic =
        UnconstrainedSensitivity(q, p.graph(), kMaxEdges).value();
    double closed = CumulativeHistogramSensitivity(p).value();
    EXPECT_DOUBLE_EQ(closed, generic) << "theta = " << theta;
  }
}

// --- q_sum closed forms (Lemma 6.1) ---

TEST(QSumSensitivityTest, FullGraphIsTwiceDiameter) {
  auto grid = MakeGrid(16, 2, 2.0);  // diameter = 2 * 15 * 2 = 60
  Policy p = Policy::FullDomain(grid).value();
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 2.0 * grid->Diameter());
}

TEST(QSumSensitivityTest, AttributeGraphIsTwiceLargestAxis) {
  auto dom = std::make_shared<const Domain>(
      Domain::Create({Attribute{"a", 10, 1.0}, Attribute{"b", 4, 5.0}})
          .value());
  Policy p = Policy::Attribute(dom).value();
  // max(1*(10-1), 5*(4-1)) = max(9, 15) = 15.
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 30.0);
}

TEST(QSumSensitivityTest, DistanceThresholdIsTwiceTheta) {
  auto grid = MakeGrid(256, 3);
  Policy p = Policy::DistanceThreshold(grid, 128.0).value();
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 256.0);
}

TEST(QSumSensitivityTest, ThetaCappedAtDiameter) {
  auto grid = MakeGrid(4, 2);  // diameter 6
  Policy p = Policy::DistanceThreshold(grid, 100.0).value();
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 12.0);
}

TEST(QSumSensitivityTest, PartitionUsesCellDiameter) {
  auto grid = MakeGrid(12, 2);
  Policy p = Policy::GridPartition(grid, {3, 4}).value();
  // Cells are 4 x 3 -> diameter (4-1) + (3-1) = 5.
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 10.0);
}

TEST(QSumSensitivityTest, GenericFallbackOnExplicitGraph) {
  auto dom = MakeLine(5);
  // Explicit edges {0-1, 1-4}: max edge L1 distance = 3.
  auto g = ExplicitGraph::Create(5, {{0, 1}, {1, 4}}).value();
  Policy p = Policy::Create(
                 dom, std::shared_ptr<const SecretGraph>(std::move(g)))
                 .value();
  EXPECT_DOUBLE_EQ(QSumSensitivity(p).value(), 6.0);
}

TEST(QSizeSensitivityTest, TwoWithEdgesZeroWithout) {
  FullGraph full(4);
  EXPECT_DOUBLE_EQ(QSizeSensitivity(full), 2.0);
  auto empty = ExplicitGraph::Create(4, {}).value();
  EXPECT_DOUBLE_EQ(QSizeSensitivity(*empty), 0.0);
}

// --- ValueWeightedSumQuery ---

TEST(ValueWeightedSumTest, LinearSumSensitivity) {
  // f = sum of values; domain [0, 9]; G^{d,theta}: S = theta (Sec 5's
  // linear sum example with unit weights).
  auto dom = MakeLine(10);
  ValueWeightedSumQuery q(
      [](ValueIndex x) { return static_cast<double>(x); });
  auto theta = DistanceThresholdGraph::Create(dom, 4.0).value();
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, *theta, kMaxEdges).value(),
                   4.0);
  FullGraph full(10);
  EXPECT_DOUBLE_EQ(UnconstrainedSensitivity(q, full, kMaxEdges).value(), 9.0);
}

TEST(ValueWeightedSumTest, EvaluateMatchesDirectSum) {
  ValueWeightedSumQuery q(
      [](ValueIndex x) { return static_cast<double>(x) * 0.5; });
  Histogram h({2.0, 0.0, 4.0});
  std::vector<double> out = q.Evaluate(h);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 0.0 * 2.0 + 1.0 * 0.5 * 0.0 + 2.0 * 0.5 * 4.0);
}

// --- Default EdgeNorm vs overridden closed forms ---

class EdgeNormConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeNormConsistencyTest, CumulativeClosedFormMatchesSparseColumns) {
  const uint64_t n = GetParam();
  CumulativeHistogramQuery q(n);
  // A reference implementation computed from the dense columns.
  for (ValueIndex x = 0; x < n; ++x) {
    for (ValueIndex y = 0; y < n; ++y) {
      std::vector<double> cx(n, 0.0), cy(n, 0.0);
      q.ForEachColumnEntry(x, [&](size_t r, double v) { cx[r] += v; });
      q.ForEachColumnEntry(y, [&](size_t r, double v) { cy[r] += v; });
      double dense = 0.0;
      for (size_t r = 0; r < n; ++r) dense += std::fabs(cx[r] - cy[r]);
      EXPECT_DOUBLE_EQ(q.EdgeNorm(x, y), dense) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDomains, EdgeNormConsistencyTest,
                         ::testing::Values(1, 2, 5, 9));

// --- Evaluate correctness ---

TEST(LinearQueryEvaluateTest, CompleteHistogramIdentity) {
  CompleteHistogramQuery q(4);
  Histogram h({1.0, 2.0, 0.0, 5.0});
  EXPECT_EQ(q.Evaluate(h), h.counts());
}

TEST(LinearQueryEvaluateTest, CumulativeMatchesPrefixSums) {
  CumulativeHistogramQuery q(4);
  Histogram h({1.0, 2.0, 0.0, 5.0});
  EXPECT_EQ(q.Evaluate(h), h.CumulativeSums());
}

// --- Closed forms vs the brute-force neighbour oracle (Def 5.1) ---

TEST(SensitivityOracleTest, HistogramMatchesBruteForce) {
  auto dom = MakeLine(4);
  auto hist = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    return h;
  };
  for (auto make : {+[](std::shared_ptr<const Domain> dm) {
                      return Policy::FullDomain(dm).value();
                    },
                    +[](std::shared_ptr<const Domain> dm) {
                      return Policy::Line(dm).value();
                    }}) {
    Policy p = make(dom);
    double brute = BruteForceSensitivity(p, 2, 1000, hist).value();
    EXPECT_DOUBLE_EQ(HistogramSensitivity(p.graph()), brute);
  }
}

TEST(SensitivityOracleTest, CumulativeMatchesBruteForceAcrossThetas) {
  auto dom = MakeLine(5);
  auto cumulative = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    for (size_t i = 1; i < h.size(); ++i) h[i] += h[i - 1];
    return h;
  };
  for (double theta : {1.0, 2.0, 3.0, 4.0}) {
    Policy p = Policy::DistanceThreshold(dom, theta).value();
    double closed = CumulativeHistogramSensitivity(p).value();
    double brute = BruteForceSensitivity(p, 2, 1000, cumulative).value();
    EXPECT_DOUBLE_EQ(closed, brute) << "theta = " << theta;
  }
}

}  // namespace
}  // namespace blowfish
