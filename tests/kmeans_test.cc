#include "mech/kmeans.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

// Four tight, well-separated clusters in 2-D.
std::vector<std::vector<double>> FourClusters(size_t per_cluster,
                                              Random& rng) {
  const double centers[4][2] = {{5, 5}, {5, 45}, {45, 5}, {45, 45}};
  std::vector<std::vector<double>> points;
  points.reserve(4 * per_cluster);
  for (const auto& c : centers) {
    for (size_t i = 0; i < per_cluster; ++i) {
      points.push_back({c[0] + rng.Gaussian(0, 1), c[1] + rng.Gaussian(0, 1)});
    }
  }
  return points;
}

TEST(KMeansObjectiveTest, ExactForKnownAssignment) {
  std::vector<std::vector<double>> points = {{0, 0}, {2, 0}, {10, 0}};
  std::vector<std::vector<double>> centroids = {{1, 0}, {10, 0}};
  // Points 0,1 -> centroid (1,0) at squared distance 1 each; point 2 -> 0.
  EXPECT_DOUBLE_EQ(KMeansObjective(points, centroids), 2.0);
}

TEST(LloydKMeansTest, Validation) {
  Random rng(1);
  KMeansOptions opts;
  EXPECT_FALSE(LloydKMeans({}, opts, rng).ok());
  opts.k = 5;
  EXPECT_FALSE(LloydKMeans({{1.0}, {2.0}}, opts, rng).ok());  // k > n
  opts.k = 1;
  opts.iterations = 0;
  EXPECT_FALSE(LloydKMeans({{1.0}}, opts, rng).ok());
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {3.0}};
  opts.iterations = 5;
  EXPECT_FALSE(LloydKMeans(ragged, opts, rng).ok());
}

TEST(LloydKMeansTest, RecoversWellSeparatedClusters) {
  Random rng(42);
  auto points = FourClusters(100, rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 15;
  // Run a few restarts and keep the best, as any k-means user would.
  double best = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < 5; ++restart) {
    best = std::min(best, LloydKMeans(points, opts, rng).value().objective);
  }
  // With sigma=1 clusters of 100 points each, per-point E||x-mu||^2 ~ 2,
  // so a correct clustering has objective ~ 800.
  EXPECT_LT(best, 1500.0);
}

TEST(SuLQKMeansTest, Validation) {
  Random rng(1);
  KMeansOptions opts;
  opts.k = 2;
  std::vector<std::vector<double>> pts = {{1.0}, {2.0}};
  EXPECT_FALSE(
      SuLQKMeans(pts, {0.0}, {3.0}, 1.0, 2.0, 0.0, opts, rng).ok());
  EXPECT_FALSE(
      SuLQKMeans(pts, {0.0, 0.0}, {3.0}, 1.0, 2.0, 1.0, opts, rng).ok());
  EXPECT_FALSE(
      SuLQKMeans(pts, {0.0}, {3.0}, -1.0, 2.0, 1.0, opts, rng).ok());
  EXPECT_TRUE(
      SuLQKMeans(pts, {0.0}, {3.0}, 1.0, 2.0, 1.0, opts, rng).ok());
}

TEST(SuLQKMeansTest, CentroidsStayInBox) {
  Random rng(7);
  auto points = FourClusters(50, rng);
  KMeansOptions opts;
  opts.k = 4;
  auto result = SuLQKMeans(points, {0.0, 0.0}, {50.0, 50.0},
                           /*qsum_sensitivity=*/100.0,
                           /*qsize_sensitivity=*/2.0,
                           /*epsilon=*/0.1, opts, rng)
                    .value();
  for (const auto& c : result.centroids) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_GE(c[d], 0.0);
      EXPECT_LE(c[d], 50.0);
    }
  }
}

// Smaller q_sum sensitivity (a weaker Blowfish policy) should on average
// yield a no-worse objective than the DP-scale sensitivity — Lemma 6.1's
// utility mechanism in miniature.
TEST(SuLQKMeansTest, LowerSensitivityGivesBetterObjective) {
  Random data_rng(17);
  auto points = FourClusters(100, data_rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const double eps = 0.5;
  double obj_dp = 0.0, obj_bf = 0.0;
  Random rng(19);
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    obj_dp += SuLQKMeans(points, {0.0, 0.0}, {50.0, 50.0}, 200.0, 2.0, eps,
                         opts, rng)
                  .value()
                  .objective;
    obj_bf += SuLQKMeans(points, {0.0, 0.0}, {50.0, 50.0}, 10.0, 2.0, eps,
                         opts, rng)
                  .value()
                  .objective;
  }
  EXPECT_LT(obj_bf, obj_dp);
}

TEST(BlowfishKMeansTest, EndToEndOnDataset) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(32, 2).value());
  Random rng(23);
  std::vector<ValueIndex> tuples;
  for (int i = 0; i < 400; ++i) {
    uint64_t x = static_cast<uint64_t>(rng.UniformInt(0, 31));
    uint64_t y = static_cast<uint64_t>(rng.UniformInt(0, 31));
    tuples.push_back(dom->Encode({x, y}));
  }
  Dataset data = Dataset::Create(dom, tuples).value();
  KMeansOptions opts;
  opts.k = 2;
  opts.iterations = 5;
  for (auto policy :
       {Policy::FullDomain(dom).value(),
        Policy::DistanceThreshold(dom, 8.0).value(),
        Policy::Attribute(dom).value(),
        Policy::GridPartition(dom, {4, 4}).value()}) {
    auto result = BlowfishKMeans(data, policy, 1.0, opts, rng);
    ASSERT_TRUE(result.ok()) << policy.ToString();
    EXPECT_EQ(result->centroids.size(), 2u);
    EXPECT_GE(result->objective, 0.0);
  }
}

TEST(BlowfishKMeansTest, RejectsConstrainedPolicy) {
  auto dom = std::make_shared<const Domain>(Domain::Line(8).value());
  ConstraintSet cs;
  cs.Add(CountQuery("low", [](ValueIndex x) { return x < 4; }));
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(8),
                            std::move(cs))
                 .value();
  Dataset data = Dataset::Create(dom, {1, 2, 3}).value();
  Random rng(1);
  KMeansOptions opts;
  opts.k = 1;
  EXPECT_EQ(BlowfishKMeans(data, p, 1.0, opts, rng).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace blowfish
