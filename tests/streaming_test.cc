// Streaming per-query completion: the callback contract of
// ReleaseEngine::ServeBatch / EngineHost::SubmitBatch.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/policy.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "server/engine_host.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 1234;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 7) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

/// A mixed batch: successes, an admission refusal (eps = 0 on positive
/// sensitivity), and an execution-time failure (out-of-domain range).
std::vector<QueryRequest> MixedBatch() {
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(MakeQueryRequest("histogram", 0.1).value());
  }
  batch.push_back(
      MakeQueryRequest("range", 0.2, {{"lo", "5"}, {"hi", "50"}}).value());
  batch.push_back(MakeQueryRequest("histogram", 0.0).value());  // refused
  batch.push_back(
      MakeQueryRequest("range", 0.2, {{"lo", "5"}, {"hi", "1000"}})
          .value());  // fails at execution -> refunded
  batch.push_back(
      MakeQueryRequest("quantiles", 0.2, {{"qs", "0.25,0.75"}}).value());
  return batch;
}

/// Collects callbacks; the engine serializes them, but assert under a
/// mutex anyway so a contract violation shows up as a test failure, not
/// a data race.
struct Collector {
  std::mutex mu;
  std::map<size_t, QueryResponse> seen;
  std::vector<size_t> order;

  QueryCompletionCallback Callback() {
    return [this](size_t index, const QueryResponse& response) {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(seen.emplace(index, response).second)
          << "query " << index << " completed twice";
      order.push_back(index);
    };
  }
};

TEST(StreamingTest, PayloadsBitIdenticalToNonStreamingForAnyPoolSize) {
  auto domain = LineDomain(64);
  Policy policy = Policy::Line(domain).value();
  Dataset data = MakeData(domain, 400);
  const std::vector<QueryRequest> batch = MixedBatch();

  // Non-streaming reference (single-threaded).
  ReleaseEngineOptions reference_options;
  reference_options.root_seed = kSeed;
  reference_options.default_session_budget = 100.0;
  auto reference_engine =
      ReleaseEngine::Create(policy, data, reference_options);
  ASSERT_TRUE(reference_engine.ok());
  const std::vector<QueryResponse> reference =
      (*reference_engine)->ServeBatch(batch);

  for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
    auto pool = std::make_shared<ThreadPool>(pool_size);
    ReleaseEngineOptions options;
    options.root_seed = kSeed;
    options.default_session_budget = 100.0;
    options.pool = pool;
    auto engine = ReleaseEngine::Create(policy, data, options);
    ASSERT_TRUE(engine.ok());
    Collector collector;
    auto returned = (*engine)->ServeBatch(batch, collector.Callback());

    // Exactly one completion per query, streamed and returned payloads
    // identical, and the whole thing bit-identical to the non-streaming
    // single-threaded run.
    ASSERT_EQ(collector.seen.size(), batch.size())
        << "pool size " << pool_size;
    ASSERT_EQ(returned.size(), reference.size());
    for (size_t i = 0; i < returned.size(); ++i) {
      const QueryResponse& streamed = collector.seen.at(i);
      EXPECT_EQ(streamed.values, returned[i].values)
          << "pool " << pool_size << " query " << i;
      EXPECT_EQ(streamed.status.code(), returned[i].status.code());
      EXPECT_EQ(returned[i].values, reference[i].values)
          << "pool " << pool_size << " query " << i;
      EXPECT_EQ(returned[i].status.code(), reference[i].status.code());
      EXPECT_DOUBLE_EQ(returned[i].sensitivity, reference[i].sensitivity);
    }
  }
}

TEST(StreamingTest, ZeroWorkerPoolStreamsInRequestOrder) {
  // With no pool workers the submitting thread executes everything, so
  // completion order is fully deterministic: refused queries first (in
  // request order), then admitted queries in request order.
  auto domain = LineDomain(32);
  Policy policy = Policy::Line(domain).value();
  Dataset data = MakeData(domain, 200);
  auto pool = std::make_shared<ThreadPool>(0);
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 100.0;
  options.pool = pool;
  auto engine = ReleaseEngine::Create(policy, data, options);
  ASSERT_TRUE(engine.ok());

  std::vector<QueryRequest> batch;
  batch.push_back(MakeQueryRequest("histogram", 0.1).value());  // admitted
  batch.push_back(MakeQueryRequest("histogram", 0.0).value());  // refused
  batch.push_back(MakeQueryRequest("histogram", 0.1).value());  // admitted
  Collector collector;
  (void)(*engine)->ServeBatch(batch, collector.Callback());
  EXPECT_EQ(collector.order, (std::vector<size_t>{1, 0, 2}));
}

TEST(StreamingTest, CallbackSeesPreRefundReceipt) {
  // The callback fires the moment execution finishes; the end-of-batch
  // refund pass has not run yet, so a query that fails mid-mechanism
  // streams with its charge still in place and is refunded only in the
  // returned vector. (Streams must not wait on the whole batch — that
  // is the point of streaming.)
  auto domain = LineDomain(32);
  Policy policy = Policy::Line(domain).value();
  Dataset data = MakeData(domain, 200);
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 1.0;
  auto engine = ReleaseEngine::Create(policy, data, options);
  ASSERT_TRUE(engine.ok());

  Collector collector;
  auto returned = (*engine)->ServeBatch(
      {MakeQueryRequest("range", 0.3, {{"lo", "5"}, {"hi", "1000"}})
           .value()},
      collector.Callback());
  ASSERT_FALSE(returned[0].status.ok());
  EXPECT_TRUE(returned[0].receipt.refunded);
  const QueryResponse& streamed = collector.seen.at(0);
  EXPECT_FALSE(streamed.receipt.refunded);
  EXPECT_TRUE(streamed.values.empty());  // hygiene applies before streaming
}

TEST(StreamingTest, HostSubmitBatchStreamsAheadOfTheFuture) {
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHostOptions host_options;
  host_options.num_threads = 4;
  EngineHost host(host_options);
  TenantOptions tenant;
  tenant.default_session_budget = 100.0;
  ASSERT_TRUE(
      host.AddTenant("p", "d", policy, MakeData(domain, 200), tenant).ok());

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(MakeQueryRequest("histogram", 0.1).value());
  }
  Collector collector;
  auto future = host.SubmitBatch("p", "d", batch, collector.Callback());
  auto responses = future.get();
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  // By the time the future resolves, every query has streamed, with the
  // exact payload the future carries.
  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.seen.size(), batch.size());
  for (size_t i = 0; i < responses->size(); ++i) {
    EXPECT_EQ(collector.seen.at(i).values, (*responses)[i].values);
  }
}

TEST(StreamingTest, NoCallbackForBatchThatNeverReachesTheEngine) {
  EngineHost host;
  Collector collector;
  auto future = host.SubmitBatch(
      "ghost", "tenant", {MakeQueryRequest("histogram", 0.1).value()},
      collector.Callback());
  auto responses = future.get();
  EXPECT_EQ(responses.status().code(), StatusCode::kNotFound);
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_TRUE(collector.seen.empty());
}

}  // namespace
}  // namespace blowfish
