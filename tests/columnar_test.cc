// Columnar dictionary-encoded representation (data/columnar.h) and its
// scan kernels (data/scan.h): encode -> decode round trips over seeded
// random datasets, the dictionary invariants (sorted, duplicate-free,
// observed cardinality), bit-exact agreement of every kernel with its
// row-major reference loop, the bucket-LUT error paths, the dataset's
// cached columnar view semantics, and the load-observability metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/domain.h"
#include "data/columnar.h"
#include "data/csv_loader.h"
#include "data/scan.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeDomain(std::vector<Attribute> attrs) {
  return std::make_shared<const Domain>(Domain::Create(attrs).value());
}

std::vector<ValueIndex> RandomRows(const Domain& domain, size_t n,
                                   uint64_t seed) {
  Random rng(seed);
  std::vector<ValueIndex> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain.size()) - 1)));
  }
  return rows;
}

/// The property-test fixtures: 1-D, multi-attribute, and a shape whose
/// per-attribute cardinalities exceed the dense-lookup sweet spot only
/// jointly (the encoder picks its path per column).
std::vector<std::shared_ptr<const Domain>> PropertyDomains() {
  return {
      MakeDomain({Attribute{"x", 64, 1.0}}),
      MakeDomain({Attribute{"a", 4, 1.0}, Attribute{"b", 17, 1.0}}),
      MakeDomain({Attribute{"a", 3, 1.0}, Attribute{"b", 5, 2.0},
                  Attribute{"c", 11, 1.0}}),
  };
}

TEST(ColumnarTest, EncodeDecodeRoundTripProperty) {
  for (const auto& domain : PropertyDomains()) {
    for (uint64_t seed : {1u, 7u, 42u}) {
      SCOPED_TRACE("domain size " + std::to_string(domain->size()) +
                   " seed " + std::to_string(seed));
      const std::vector<ValueIndex> rows = RandomRows(*domain, 500, seed);
      auto table = ColumnarTable::FromRows(domain, rows);
      ASSERT_TRUE(table.ok()) << table.status().ToString();
      ASSERT_EQ(table->num_rows(), rows.size());
      ASSERT_EQ(table->num_columns(), domain->num_attributes());
      // Decode half: MaterializeRows reproduces the input exactly, in
      // order, and so does the per-row O(1) recombination.
      EXPECT_EQ(table->MaterializeRows(), rows);
      for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(table->RowValue(i), rows[i]) << "row " << i;
        const std::vector<uint64_t> coords = domain->Decode(rows[i]);
        for (size_t j = 0; j < coords.size(); ++j) {
          ASSERT_EQ(table->Level(i, j), coords[j])
              << "row " << i << " attr " << j;
        }
      }
    }
  }
}

TEST(ColumnarTest, DictionariesSortedUniqueWithObservedCardinality) {
  // A sparse column: cardinality 4096 but only a handful of observed
  // levels (the adult capital-loss shape) — the dictionary must hold
  // exactly the observed set, ascending, and every id must index it.
  auto domain = MakeDomain({Attribute{"sparse", 4096, 1.0}});
  std::vector<ValueIndex> rows;
  const std::vector<uint64_t> levels = {7, 0, 4095, 7, 1024, 0, 7};
  for (uint64_t level : levels) rows.push_back(level);
  auto table = ColumnarTable::FromRows(domain, rows);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  const std::set<uint64_t> observed(levels.begin(), levels.end());
  EXPECT_EQ(table->cardinality(0), observed.size());
  const std::vector<uint64_t>& dict = table->dictionary(0);
  EXPECT_EQ(std::vector<uint64_t>(observed.begin(), observed.end()), dict);
  EXPECT_TRUE(std::is_sorted(dict.begin(), dict.end()));
  EXPECT_EQ(std::adjacent_find(dict.begin(), dict.end()), dict.end());
  for (uint32_t id : table->ids(0)) {
    EXPECT_LT(id, dict.size());
  }
}

TEST(ColumnarTest, EmptyDatasetEncodes) {
  auto domain = MakeDomain({Attribute{"a", 4, 1.0}, Attribute{"b", 8, 1.0}});
  auto table = ColumnarTable::FromRows(domain, {});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->cardinality(0), 0u);
  EXPECT_EQ(table->cardinality(1), 0u);
  EXPECT_TRUE(table->MaterializeRows().empty());
  auto hist = ScanCompleteHistogram(*table);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->Total(), 0.0);
  EXPECT_EQ(hist->size(), domain->size());
}

TEST(ColumnarTest, RejectsRowsOutsideTheDomain) {
  // The null-free guarantee: a row that is not a domain value must be
  // refused at construction, not mapped to garbage ids.
  auto domain = MakeDomain({Attribute{"a", 4, 1.0}});
  auto table = ColumnarTable::FromRows(domain, {0, 3, 4});
  EXPECT_FALSE(table.ok());
}

TEST(ColumnarTest, ScanCompleteHistogramBitIdenticalToRowMajor) {
  for (const auto& domain : PropertyDomains()) {
    for (uint64_t seed : {3u, 19u}) {
      SCOPED_TRACE("domain size " + std::to_string(domain->size()) +
                   " seed " + std::to_string(seed));
      Dataset data =
          Dataset::Create(domain, RandomRows(*domain, 777, seed)).value();
      auto reference = data.CompleteHistogram();
      ASSERT_TRUE(reference.ok());
      auto columns = data.columns();
      ASSERT_TRUE(columns.ok()) << columns.status().ToString();
      auto scanned = ScanCompleteHistogram(**columns);
      ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
      // Bit-exact, not approximate: counts are integers, exact in
      // doubles, and the kernels count the same multiset.
      EXPECT_EQ(scanned->counts(), reference->counts());
    }
  }
}

TEST(ColumnarTest, AttributeHistogramMatchesDecodedMarginal) {
  auto domain =
      MakeDomain({Attribute{"a", 6, 1.0}, Attribute{"b", 9, 1.0}});
  Dataset data =
      Dataset::Create(domain, RandomRows(*domain, 400, 5)).value();
  auto columns = data.columns();
  ASSERT_TRUE(columns.ok());
  for (size_t attr = 0; attr < domain->num_attributes(); ++attr) {
    Histogram expected(domain->attribute(attr).cardinality);
    for (ValueIndex t : data.tuples()) {
      expected.Add(domain->Decode(t)[attr]);
    }
    const Histogram marginal = ScanAttributeHistogram(**columns, attr);
    EXPECT_EQ(marginal.counts(), expected.counts()) << "attr " << attr;

    // ScanColumnCounts is the dense core of the marginal: scattering it
    // through the dictionary must give the same histogram.
    const std::vector<uint64_t> counts = ScanColumnCounts(**columns, attr);
    ASSERT_EQ(counts.size(), (*columns)->cardinality(attr));
    Histogram scattered(domain->attribute(attr).cardinality);
    for (size_t id = 0; id < counts.size(); ++id) {
      scattered.Add((*columns)->dictionary(attr)[id],
                    static_cast<double>(counts[id]));
    }
    EXPECT_EQ(scattered.counts(), expected.counts()) << "attr " << attr;
  }
}

TEST(ColumnarTest, PartitionedHistogramLutMatchesPerTupleLoop) {
  auto domain = MakeDomain({Attribute{"x", 32, 1.0}});
  Dataset data =
      Dataset::Create(domain, RandomRows(*domain, 600, 23)).value();
  const auto bucket_of = [](ValueIndex x) { return x / 5; };
  constexpr size_t kBuckets = 7;

  Histogram expected(kBuckets);
  for (ValueIndex t : data.tuples()) expected.Add(bucket_of(t));

  // Dataset::PartitionedHistogram now goes through the LUT internally.
  const Histogram via_dataset =
      data.PartitionedHistogram(bucket_of, kBuckets);
  EXPECT_EQ(via_dataset.counts(), expected.counts());

  // And the columnar kernel agrees with both.
  auto lut = BuildBucketLut(*domain, bucket_of, kBuckets);
  ASSERT_TRUE(lut.ok()) << lut.status().ToString();
  auto columns = data.columns();
  ASSERT_TRUE(columns.ok());
  const Histogram via_scan =
      ScanPartitionedHistogram(**columns, *lut, kBuckets);
  EXPECT_EQ(via_scan.counts(), expected.counts());
}

TEST(ColumnarTest, BuildBucketLutRejectsBadInputs) {
  auto small = MakeDomain({Attribute{"x", 8, 1.0}});
  // A bucket function that escapes [0, num_buckets) is a caller bug and
  // must be refused, not silently counted out of bounds.
  auto bad = BuildBucketLut(*small, [](ValueIndex x) { return x; }, 4);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // A domain too large to materialize the table is refused up front,
  // with the same ResourceExhausted class the complete histogram uses.
  auto huge_domain = Domain::Line((uint64_t{1} << 26) + 1);
  ASSERT_TRUE(huge_domain.ok());
  auto huge = BuildBucketLut(*huge_domain, [](ValueIndex) { return 0; }, 1);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);
}

TEST(ColumnarTest, RestrictedCountsAndValueWeightedSum) {
  Histogram h(std::vector<double>{5.0, 0.0, 2.0, 7.0});
  EXPECT_EQ(RestrictedCounts(h, {3, 0}), (std::vector<double>{7.0, 5.0}));
  EXPECT_TRUE(RestrictedCounts(h, {}).empty());

  // Reference loop, buckets ascending — must match bit-for-bit.
  const double scale = 0.25;
  double expected = 0.0;
  for (size_t x = 0; x < h.size(); ++x) {
    expected += static_cast<double>(x) * scale * h[x];
  }
  EXPECT_EQ(ValueWeightedSum(h, scale), expected);
}

TEST(ColumnarTest, DatasetColumnsViewIsCachedAndSharedByCopies) {
  auto domain = MakeDomain({Attribute{"x", 16, 1.0}});
  Dataset data =
      Dataset::Create(domain, RandomRows(*domain, 50, 9)).value();
  auto first = data.columns();
  ASSERT_TRUE(first.ok());
  auto second = data.columns();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "second call must hit the cache";

  // Copies made after the build share the immutable view...
  Dataset copy = data;
  auto copied = copy.columns();
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->get(), first->get());

  // ...but a mutated derivative must not: WithTuple starts fresh.
  Dataset moved = data.WithTuple(0, 15).value();
  auto rebuilt = moved.columns();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(rebuilt->get(), first->get());
  EXPECT_EQ((*rebuilt)->MaterializeRows(), moved.tuples());
}

TEST(ColumnarTest, RecordDatasetLoadMetricsAccumulatesAndSetsCardinality) {
  auto domain =
      MakeDomain({Attribute{"age", 16, 1.0}, Attribute{"hours", 8, 1.0}});
  auto table =
      ColumnarTable::FromRows(domain, RandomRows(*domain, 100, 31));
  ASSERT_TRUE(table.ok());

  obs::MetricsRegistry registry;
  RecordDatasetLoadMetrics(*table, 0.5, &registry);
  RecordDatasetLoadMetrics(*table, 0.25, &registry);
  // Seconds and rows accumulate across loads; per-attribute cardinality
  // is set-to-latest (a second load of 100 rows must not double it).
  EXPECT_DOUBLE_EQ(registry.GetDoubleCounter("data_load_seconds")->Value(),
                   0.75);
  EXPECT_EQ(registry.GetGauge("data_rows")->Value(), 200);
  EXPECT_EQ(
      registry.GetGauge("data_column_cardinality{attr=age}")->Value(),
      static_cast<int64_t>(table->cardinality(0)));
  EXPECT_EQ(
      registry.GetGauge("data_column_cardinality{attr=hours}")->Value(),
      static_cast<int64_t>(table->cardinality(1)));
}

TEST(ColumnarTest, CsvLoaderRecordsLoadMetrics) {
  constexpr char kCsv[] = "age\n3\n3\n7\n1\n";
  CsvColumnSpec spec;
  spec.column = 0;
  spec.attribute = Attribute{"age", 10, 1.0};
  obs::MetricsRegistry registry;
  CsvOptions options;
  options.metrics = &registry;
  auto data = LoadCsv(kCsv, {spec}, options);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->size(), 4u);
  EXPECT_EQ(registry.GetGauge("data_rows")->Value(), 4);
  EXPECT_EQ(registry.GetGauge("data_column_cardinality{attr=age}")->Value(),
            3);
  EXPECT_GT(registry.GetDoubleCounter("data_load_seconds")->Value(), 0.0);
}

}  // namespace
}  // namespace blowfish
