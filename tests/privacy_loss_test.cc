#include "core/privacy_loss.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

TEST(PrivacyAccountantTest, SequentialAdds) {
  PrivacyAccountant acct;
  ASSERT_TRUE(acct.SpendSequential(0.5, "kmeans").ok());
  ASSERT_TRUE(acct.SpendSequential(0.3).ok());
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 0.8);
}

TEST(PrivacyAccountantTest, ParallelTakesMax) {
  PrivacyAccountant acct;
  ASSERT_TRUE(acct.SpendParallel({0.2, 0.5, 0.1}, "per-state release").ok());
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 0.5);
}

TEST(PrivacyAccountantTest, MixedLedger) {
  PrivacyAccountant acct;
  ASSERT_TRUE(acct.SpendSequential(1.0).ok());
  ASSERT_TRUE(acct.SpendParallel({0.4, 0.4}).ok());
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 1.4);
  std::string s = acct.ToString();
  EXPECT_NE(s.find("parallel"), std::string::npos);
}

TEST(PrivacyAccountantTest, RejectsBadEpsilons) {
  PrivacyAccountant acct;
  EXPECT_FALSE(acct.SpendSequential(0.0).ok());
  EXPECT_FALSE(acct.SpendSequential(-1.0).ok());
  EXPECT_FALSE(acct.SpendParallel({}).ok());
  EXPECT_FALSE(acct.SpendParallel({0.5, 0.0}).ok());
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 0.0);
}

// The paper's closing example of Sec 4.1: G has two disconnected
// components S and T\S, and the constraints count tuples in S and in T\S.
// No edge of G crosses the component boundary, so crit(q) is empty for
// both constraints and parallel composition is valid.
TEST(ParallelCompositionTest, ComponentCountsAreSafe) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  auto part = PartitionGraph::UniformGrid(dom, {2}).value();  // {0-2},{3-5}
  ConstraintSet q;
  q.Add(CountQuery("in_S", [](ValueIndex x) { return x < 3; }));
  q.Add(CountQuery("in_TS", [](ValueIndex x) { return x >= 3; }));
  Policy p =
      Policy::Create(dom,
                     std::shared_ptr<const SecretGraph>(part.release()),
                     std::move(q))
          .value();
  EXPECT_TRUE(ParallelCompositionValid(p, uint64_t{1} << 20).value());
}

// The gender example of Sec 4.1: full-domain secrets plus a constraint
// whose answer an edge can change -> crit(q) non-empty -> not safe.
TEST(ParallelCompositionTest, CrossCuttingConstraintUnsafe) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  ConstraintSet q;
  q.Add(CountQuery("males", [](ValueIndex x) { return x < 3; }));
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(6),
                            std::move(q))
                 .value();
  EXPECT_FALSE(ParallelCompositionValid(p, uint64_t{1} << 20).value());
}

TEST(ParallelCompositionTest, NoConstraintsAlwaysSafe) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  Policy p = Policy::FullDomain(dom).value();
  EXPECT_TRUE(ParallelCompositionValid(p, uint64_t{1} << 20).value());
}

}  // namespace
}  // namespace blowfish
