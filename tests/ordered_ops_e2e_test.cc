// The ordered scenario column, end to end: the S_T family (`range`,
// `cdf`, `quantiles`) serving PINNED-constrained policies at the
// weighted Thm 8.2 chain bound over the prefix-sum query, the
// randomized oracle-dominance certificate for that bound (mirroring
// the cell-histogram suite in constrained_parallel_test.cc), and the
// self-registered `hier_range` op: serving the graphs the Ordered
// Hierarchical mechanism supports (line, full, G^{d,theta}) and
// refusing everything else PRE-charge with a structured status.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/constraints.h"
#include "core/neighbors.h"
#include "core/policy.h"
#include "core/secret_graph.h"
#include "core/sensitivity.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "util/random.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;
// The engine's defaults (SensitivityEnv), so analytic recomputations
// below match what admission resolved.
constexpr uint64_t kMaxEdges = uint64_t{1} << 24;
constexpr uint64_t kMaxPairs = uint64_t{1} << 28;
constexpr size_t kMaxVertices = 24;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 11) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

QueryRequest Request(
    const std::string& kind, double eps,
    const std::vector<std::pair<std::string, std::string>>& kv = {}) {
  auto request = MakeQueryRequest(kind, eps, kv);
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return std::move(*request);
}

std::unique_ptr<ReleaseEngine> MakeEngine(const Policy& policy,
                                          const Dataset& data) {
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 4.0;
  auto engine = ReleaseEngine::Create(policy, data, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(OrderedOpsE2ETest, PinnedFamilyServesAtTheCumulativeChainBound) {
  // Line(8), G^P cells {0..3} / {4..7}, pinned #(x < 2): the FixtureA
  // of constrained_ops_e2e_test.cc. All three S_T ops must serve, all
  // three noised at the SAME sensitivity — the weighted chain bound
  // over the prefix-sum query, recomputed here through the public API.
  auto domain = LineDomain(8);
  Dataset data = MakeData(domain, 120);
  auto part = PartitionGraph::UniformGrid(domain, {2}).value();
  ConstraintSet cs;
  CountQuery low("low", [](ValueIndex x) { return x < 2; });
  const uint64_t answer = low.Evaluate(data);
  cs.AddWithAnswer(std::move(low), answer);
  Policy policy =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part.release()),
                     std::move(cs))
          .value();

  CumulativeHistogramQuery query(domain->size());
  auto chain_bound = ConstrainedLinearQuerySensitivity(
      query, policy, kMaxEdges, kMaxPairs, kMaxVertices);
  ASSERT_TRUE(chain_bound.ok()) << chain_bound.status().ToString();
  EXPECT_GT(*chain_bound, 0.0);
  // ...and it must be a genuine chain bound: strictly above the
  // unconstrained closed form this policy's graph would give.
  auto unconstrained_form = CumulativeHistogramSensitivity(policy);
  ASSERT_TRUE(unconstrained_form.ok());
  EXPECT_GT(*chain_bound, *unconstrained_form);

  auto engine = MakeEngine(policy, data);
  auto responses = engine->ServeBatch(
      {Request("range", 0.25, {{"lo", "1"}, {"hi", "5"}}),
       Request("cdf", 0.25),
       Request("quantiles", 0.25, {{"qs", "0.1,0.5,0.9"}})});
  ASSERT_EQ(responses.size(), 3u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << "query " << i << ": " << responses[i].status.ToString();
    EXPECT_DOUBLE_EQ(responses[i].sensitivity, *chain_bound)
        << "query " << i;
  }
  EXPECT_EQ(responses[0].values.size(), 1u);
  EXPECT_EQ(responses[1].values.size(), domain->size());
  EXPECT_EQ(responses[2].values.size(), 3u);
  // The CDF post-processing is share-of-total: values stay in [0, 1]
  // and quantile indices stay inside the domain.
  for (double v : responses[1].values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double q : responses[2].values) {
    EXPECT_GE(q, 0.0);
    EXPECT_LT(q, static_cast<double>(domain->size()));
  }
  EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.75);
}

class OrderedOracleTest : public ::testing::TestWithParam<int> {};

// Randomized: the chain bound the ordered family now serves pinned
// policies at dominates the exhaustive Def 4.1 oracle for the
// cumulative histogram — the S_T mirror of the cell-histogram and
// value-weighted certificates in constrained_parallel_test.cc.
TEST_P(OrderedOracleTest, ConstrainedCumulativeBoundDominatesOracle) {
  Random rng(11000 + GetParam());
  const uint64_t n = 4 + GetParam() % 3;  // |T| in {4, 5, 6}
  auto domain = LineDomain(n);
  const uint64_t num_cells = 2;
  std::vector<uint64_t> cell_of(n);
  for (uint64_t x = 0; x < n; ++x) {
    cell_of[x] = x < num_cells
                     ? x
                     : static_cast<uint64_t>(rng.UniformInt(
                           0, static_cast<int64_t>(num_cells) - 1));
  }
  auto part = std::make_shared<const PartitionGraph>(
      n, [cell_of](ValueIndex x) { return cell_of[x]; }, "partition|test");
  // 1-2 pinned interval counts, answers drawn from a random dataset so
  // the constrained universe is non-empty.
  std::vector<ValueIndex> pin_tuples;
  for (size_t i = 0; i < 2; ++i) {
    pin_tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  }
  Dataset pin = Dataset::Create(domain, std::move(pin_tuples)).value();
  ConstraintSet cs;
  const int num_queries = rng.Bernoulli(0.5) ? 1 : 2;
  for (int q = 0; q < num_queries; ++q) {
    uint64_t lo = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    uint64_t hi = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (lo > hi) std::swap(lo, hi);
    CountQuery query("interval" + std::to_string(q),
                     [lo, hi](ValueIndex x) { return x >= lo && x <= hi; });
    const uint64_t answer = query.Evaluate(pin);
    cs.AddWithAnswer(std::move(query), answer);
  }
  Policy policy = Policy::Create(domain, part, std::move(cs)).value();

  CumulativeHistogramQuery query(n);
  auto analytic = ConstrainedLinearQuerySensitivity(
      query, policy, kMaxEdges, kMaxPairs, kMaxVertices);
  if (!analytic.ok()) {
    // Non-sparse draws are refused, never served unsoundly.
    EXPECT_EQ(analytic.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  auto cumulative = [](const Dataset& d) {
    std::vector<double> out(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) {
      for (ValueIndex j = t; j < d.domain().size(); ++j) out[j] += 1.0;
    }
    return out;
  };
  const double oracle =
      BruteForceSensitivity(policy, 2, 100000, cumulative).value();
  EXPECT_LE(oracle, *analytic + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedOracleTest,
                         ::testing::Range(0, 25));

TEST(OrderedOpsE2ETest, HierRangeServesSupportedGraphsEndToEnd) {
  auto domain = LineDomain(32);
  Dataset data = MakeData(domain, 400, 19);

  // Line graph: theta = 1, S(S_T) = 1, the pure Ordered Mechanism
  // degeneration. Options (fanout, split, consistency) all round-trip
  // through the batch grammar.
  Policy line_policy =
      Policy::Create(domain, std::make_shared<LineGraph>(domain->size()))
          .value();
  auto line_engine = MakeEngine(line_policy, data);
  auto line_responses = line_engine->ServeBatch(ParseBatchRequests(
      "hier_range eps=0.25 lo=4 hi=20 label=plain\n"
      "hier_range eps=0.25 lo=4 hi=20 fanout=4 eps_s_fraction=0.5 "
      "consistency=1 label=tuned\n").value());
  ASSERT_EQ(line_responses.size(), 2u);
  for (const QueryResponse& r : line_responses) {
    ASSERT_TRUE(r.status.ok()) << r.label << ": " << r.status.ToString();
    ASSERT_EQ(r.values.size(), 1u);
    EXPECT_DOUBLE_EQ(r.sensitivity,
                     CumulativeHistogramSensitivity(line_policy).value());
    EXPECT_DOUBLE_EQ(r.sensitivity, 1.0);
  }

  // Full graph: the classical hierarchical degeneration still serves.
  Policy full_policy =
      Policy::Create(domain,
                     std::make_shared<FullGraph>(domain->size()))
          .value();
  auto full_engine = MakeEngine(full_policy, data);
  auto full_responses = full_engine->ServeBatch(ParseBatchRequests(
      "hier_range eps=0.25 lo=0 hi=15\n").value());
  ASSERT_EQ(full_responses.size(), 1u);
  ASSERT_TRUE(full_responses[0].status.ok())
      << full_responses[0].status.ToString();
  EXPECT_DOUBLE_EQ(full_responses[0].sensitivity,
                   CumulativeHistogramSensitivity(full_policy).value());
  EXPECT_GT(full_responses[0].sensitivity, 1.0);

  // Bad op arguments are parse errors, not admission errors.
  EXPECT_FALSE(ParseBatchRequests("hier_range eps=0.25 lo=0 hi=4 "
                                  "fanout=1\n").ok());
  EXPECT_FALSE(ParseBatchRequests("hier_range eps=0.25 lo=0 hi=4 "
                                  "consistency=2\n").ok());
}

TEST(OrderedOpsE2ETest, HierRangeRefusesUnsupportedGraphsPreCharge) {
  // A partition-graph tenant (no pinned constraints, so `range` serves
  // it) must get hier_range's refusal at ADMISSION — structured,
  // naming the supported graph kinds — with nothing charged, never a
  // charge/refund pair from an Execute-time mechanism error.
  auto domain = LineDomain(16);
  Dataset data = MakeData(domain, 100, 5);
  Policy policy = Policy::GridPartition(domain, {4}).value();
  auto engine = MakeEngine(policy, data);
  auto responses = engine->ServeBatch(
      {Request("hier_range", 0.25, {{"lo", "0"}, {"hi", "7"}}),
       Request("range", 0.25, {{"lo", "0"}, {"hi", "7"}})});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(responses[0].status.message().find("line, full"),
            std::string::npos)
      << responses[0].status.message();
  EXPECT_DOUBLE_EQ(responses[0].receipt.charged, 0.0);
  ASSERT_TRUE(responses[1].status.ok()) << responses[1].status.ToString();
  // Only the served `range` touched the ledger.
  EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.25);
}

}  // namespace
}  // namespace blowfish
