#include "server/serve_config.h"

#include <gtest/gtest.h>

namespace blowfish {
namespace {

TEST(ServeConfigTest, ParsesHostAndTenantBlocks) {
  const std::string text =
      "# host section\n"
      "threads = 8\n"
      "cache_capacity = 512\n"
      "cache_file = warm.cache\n"
      "seed = 99\n"
      "\n"
      "tenant = census\n"
      "policy = census_policy.txt\n"
      "csv = census.csv\n"
      "columns = 0, 2\n"
      "bin_width = 5.0\n"
      "budget = 4.5\n"
      "seed = 7\n"
      "requests = census_reqs.txt\n"
      "ledger = census.ledger\n"
      "session = alice : 2.5\n"
      "session = bob : 1.0\n"
      "scan = row\n"
      "\n"
      "tenant = salaries\n"
      "policy = salary_policy.txt\n"
      "csv = salaries.csv  # trailing comment\n";
  auto config = ParseServeConfig(text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->threads, 8u);
  EXPECT_EQ(config->cache_capacity, 512u);
  EXPECT_EQ(config->cache_file, "warm.cache");
  ASSERT_TRUE(config->seed.has_value());
  EXPECT_EQ(*config->seed, 99u);
  ASSERT_EQ(config->tenants.size(), 2u);

  const TenantConfig& census = config->tenants[0];
  EXPECT_EQ(census.name, "census");
  EXPECT_EQ(census.policy_file, "census_policy.txt");
  EXPECT_EQ(census.csv_file, "census.csv");
  EXPECT_EQ(census.columns, (std::vector<size_t>{0, 2}));
  ASSERT_TRUE(census.bin_width.has_value());
  EXPECT_DOUBLE_EQ(*census.bin_width, 5.0);
  EXPECT_DOUBLE_EQ(census.budget, 4.5);
  ASSERT_TRUE(census.seed.has_value());
  EXPECT_EQ(*census.seed, 7u);
  EXPECT_EQ(census.requests_file, "census_reqs.txt");
  EXPECT_EQ(census.ledger_file, "census.ledger");
  ASSERT_EQ(census.sessions.size(), 2u);
  EXPECT_EQ(census.sessions[0].first, "alice");
  EXPECT_DOUBLE_EQ(census.sessions[0].second, 2.5);
  EXPECT_EQ(census.sessions[1].first, "bob");
  EXPECT_EQ(census.scan_mode, "row");

  const TenantConfig& salaries = config->tenants[1];
  EXPECT_EQ(salaries.name, "salaries");
  EXPECT_EQ(salaries.csv_file, "salaries.csv");  // comment stripped
  // Defaults for unspecified tenant keys.
  EXPECT_EQ(salaries.columns, (std::vector<size_t>{0}));
  EXPECT_FALSE(salaries.bin_width.has_value());
  EXPECT_DOUBLE_EQ(salaries.budget, 10.0);
  EXPECT_FALSE(salaries.seed.has_value());
  EXPECT_TRUE(salaries.requests_file.empty());
  EXPECT_TRUE(salaries.ledger_file.empty());
  EXPECT_EQ(salaries.scan_mode, "shared");  // the default
}

TEST(ServeConfigTest, RejectsMalformedInput) {
  // No tenants at all.
  EXPECT_FALSE(ParseServeConfig("threads = 4\n").ok());
  // Tenant keys before any tenant line.
  EXPECT_FALSE(ParseServeConfig("policy = p.txt\n").ok());
  // Unknown keys, host or tenant.
  EXPECT_FALSE(ParseServeConfig("frobnicate = 1\n").ok());
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nbogus = 1\n").ok());
  // Missing '='.
  EXPECT_FALSE(ParseServeConfig("tenant t\n").ok());
  // Malformed numbers. NaN/inf budgets would silently disable budget
  // enforcement, so non-finite values are rejected at parse time.
  EXPECT_FALSE(ParseServeConfig("threads = many\n").ok());
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nbudget = nan\n")
          .ok());
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nbudget = inf\n")
          .ok());
  EXPECT_FALSE(ParseServeConfig(
                   "tenant = t\npolicy = p\ncsv = c\nsession = a : nan\n")
                   .ok());
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nbudget = x\n").ok());
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nseed = -1\n").ok());
  // Out-of-range integers must error, not clamp to ULLONG_MAX.
  EXPECT_FALSE(ParseServeConfig("tenant = t\npolicy = p\ncsv = c\n"
                                "seed = 99999999999999999999999\n")
                   .ok());
  // Tenant missing required files.
  EXPECT_FALSE(ParseServeConfig("tenant = t\npolicy = p.txt\n").ok());
  EXPECT_FALSE(ParseServeConfig("tenant = t\ncsv = d.csv\n").ok());
  // Duplicate tenant names.
  EXPECT_FALSE(ParseServeConfig("tenant = t\npolicy = p\ncsv = c\n"
                                "tenant = t\npolicy = p\ncsv = c\n")
                   .ok());
  // Scan mode outside the shared|columnar|row vocabulary.
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nscan = fast\n")
          .ok());
  // Malformed session declarations.
  EXPECT_FALSE(
      ParseServeConfig("tenant = t\npolicy = p\ncsv = c\nsession = alice\n")
          .ok());
  EXPECT_FALSE(ParseServeConfig(
                   "tenant = t\npolicy = p\ncsv = c\nsession = : 1.0\n")
                   .ok());
}

TEST(ServeConfigTest, CommentsAndBlankLinesIgnored) {
  auto config = ParseServeConfig(
      "# a comment\n"
      "\n"
      "   \n"
      "tenant = t   # tenant comment\n"
      "policy = p.txt\n"
      "csv = d.csv\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->tenants.size(), 1u);
  EXPECT_EQ(config->tenants[0].name, "t");
}

}  // namespace
}  // namespace blowfish
