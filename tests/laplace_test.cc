#include "mech/laplace.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace blowfish {
namespace {

TEST(LaplaceReleaseTest, ZeroSensitivityIsExact) {
  Random rng(1);
  std::vector<double> truth = {1.0, 2.0, 3.0};
  auto out = LaplaceRelease(truth, 0.0, 0.5, rng).value();
  EXPECT_EQ(out, truth);
}

TEST(LaplaceReleaseTest, Validation) {
  Random rng(1);
  EXPECT_FALSE(LaplaceRelease({1.0}, 1.0, 0.0, rng).ok());
  EXPECT_FALSE(LaplaceRelease({1.0}, 1.0, -0.5, rng).ok());
  EXPECT_FALSE(LaplaceRelease({1.0}, -1.0, 0.5, rng).ok());
}

TEST(LaplaceReleaseTest, NoiseVarianceMatchesCalibration) {
  Random rng(42);
  const double sensitivity = 2.0, eps = 0.5;
  const double scale = sensitivity / eps;
  std::vector<double> errors;
  for (int i = 0; i < 20000; ++i) {
    auto out = LaplaceRelease({10.0}, sensitivity, eps, rng).value();
    errors.push_back(out[0] - 10.0);
  }
  EXPECT_NEAR(Mean(errors), 0.0, 0.1);
  EXPECT_NEAR(Variance(errors), 2.0 * scale * scale, 1.5);
}

TEST(LaplaceMechanismTest, HistogramUnderLinePolicy) {
  auto dom = std::make_shared<const Domain>(Domain::Line(8).value());
  Policy p = Policy::Line(dom).value();
  Histogram data({5, 0, 0, 3, 0, 0, 0, 2});
  CompleteHistogramQuery q(8);
  Random rng(3);
  auto out = LaplaceMechanism(q, p, data, 1.0, rng).value();
  EXPECT_EQ(out.size(), 8u);
}

TEST(LaplaceMechanismTest, PartitionedHistogramUnderPartitionPolicyIsExact) {
  auto dom = std::make_shared<const Domain>(Domain::Line(8).value());
  Policy p = Policy::GridPartition(dom, {2}).value();
  Histogram data({5, 0, 0, 3, 0, 0, 0, 2});
  const auto* part = dynamic_cast<const PartitionGraph*>(&p.graph());
  ASSERT_NE(part, nullptr);
  PartitionedHistogramQuery q(
      [part](ValueIndex x) { return part->CellOf(x); }, 2);
  Random rng(3);
  // Sensitivity is 0 under the matching partition policy: exact release.
  auto out = LaplaceMechanism(q, p, data, 1.0, rng).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 8.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(LaplaceMechanismTest, RejectsConstrainedPolicy) {
  auto dom = std::make_shared<const Domain>(Domain::Line(4).value());
  ConstraintSet cs;
  cs.Add(CountQuery("low", [](ValueIndex x) { return x < 2; }));
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(4),
                            std::move(cs))
                 .value();
  CompleteHistogramQuery q(4);
  Random rng(3);
  Histogram data(4);
  EXPECT_EQ(LaplaceMechanism(q, p, data, 1.0, rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LaplaceHistogramWithConstraintsTest, UsesPolicyGraphBound) {
  // 1-D domain of 4, constraint = count of lower half, full secrets:
  // S(h, P) = 4 (see policy_graph_test); noise is drawn at scale 4/eps.
  auto dom = std::make_shared<const Domain>(Domain::Line(4).value());
  ConstraintSet cs;
  cs.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(4),
                            std::move(cs))
                 .value();
  Histogram data({1, 0, 2, 1});
  Random rng(42);
  const double eps = 1.0;
  std::vector<double> errors;
  for (int i = 0; i < 20000; ++i) {
    auto out = LaplaceHistogramWithConstraints(p, data, eps, rng).value();
    errors.push_back(out[0] - data[0]);
  }
  // Var = 2 (4/eps)^2 = 32.
  EXPECT_NEAR(Variance(errors), 32.0, 3.0);
}

TEST(LaplaceHistogramWithConstraintsTest, RejectsUnconstrained) {
  auto dom = std::make_shared<const Domain>(Domain::Line(4).value());
  Policy p = Policy::FullDomain(dom).value();
  Histogram data(4);
  Random rng(1);
  EXPECT_EQ(
      LaplaceHistogramWithConstraints(p, data, 1.0, rng).status().code(),
      StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace blowfish
