#include "core/constraints.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/secret_graph.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeDomain223() {
  // The 2 x 2 x 3 domain of Example 8.1.
  return std::make_shared<const Domain>(
      Domain::Create({Attribute{"A1", 2, 1.0}, Attribute{"A2", 2, 1.0},
                      Attribute{"A3", 3, 1.0}})
          .value());
}

TEST(CountQueryTest, EvaluateAndMatch) {
  auto dom = std::make_shared<const Domain>(Domain::Line(10).value());
  CountQuery q("low", [](ValueIndex x) { return x < 5; });
  EXPECT_TRUE(q.Matches(3));
  EXPECT_FALSE(q.Matches(7));
  Dataset d = Dataset::Create(dom, {1, 2, 7, 9, 4}).value();
  EXPECT_EQ(q.Evaluate(d), 3u);
}

TEST(CountQueryTest, LiftLowerCritical) {
  CountQuery q("low", [](ValueIndex x) { return x < 5; });
  // 7 -> 3 enters the predicate: lift.
  EXPECT_TRUE(q.LiftedBy(7, 3));
  EXPECT_FALSE(q.LoweredBy(7, 3));
  // 3 -> 7 leaves the predicate: lower.
  EXPECT_TRUE(q.LoweredBy(3, 7));
  EXPECT_FALSE(q.LiftedBy(3, 7));
  // No boundary crossed.
  EXPECT_FALSE(q.LiftedBy(1, 2));
  EXPECT_FALSE(q.LoweredBy(8, 9));
  // Critical iff the answer changes in either direction.
  EXPECT_TRUE(q.CriticalPair(3, 7));
  EXPECT_FALSE(q.CriticalPair(1, 2));
}

TEST(RectangleTest, ContainsAndPoint) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(10, 2).value());
  Rectangle r{{2, 3}, {4, 5}};
  EXPECT_TRUE(r.Contains(*dom, dom->Encode({2, 3})));
  EXPECT_TRUE(r.Contains(*dom, dom->Encode({4, 5})));
  EXPECT_FALSE(r.Contains(*dom, dom->Encode({5, 4})));
  EXPECT_FALSE(r.IsPoint());
  Rectangle p{{1, 1}, {1, 1}};
  EXPECT_TRUE(p.IsPoint());
}

TEST(RectangleTest, MinDistance) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(20, 2).value());
  Rectangle a{{0, 0}, {2, 2}};
  Rectangle b{{5, 0}, {6, 2}};   // gap of 3 on axis 0
  Rectangle c{{5, 7}, {6, 8}};   // gaps of 3 and 5
  EXPECT_DOUBLE_EQ(a.MinDistance(*dom, b), 3.0);
  EXPECT_DOUBLE_EQ(a.MinDistance(*dom, c), 8.0);
  EXPECT_DOUBLE_EQ(b.MinDistance(*dom, a), 3.0);  // symmetric
  Rectangle overlap{{2, 2}, {4, 4}};
  EXPECT_DOUBLE_EQ(a.MinDistance(*dom, overlap), 0.0);
  EXPECT_TRUE(a.Intersects(overlap));
  EXPECT_FALSE(a.Intersects(b));
}

TEST(MarginalTest, SizeAndDisjoint) {
  auto dom = MakeDomain223();
  Marginal c12{{0, 1}};
  Marginal c3{{2}};
  EXPECT_EQ(c12.Size(*dom), 4u);
  EXPECT_EQ(c3.Size(*dom), 3u);
  EXPECT_TRUE(c12.DisjointFrom(c3));
  Marginal c13{{0, 2}};
  EXPECT_FALSE(c12.DisjointFrom(c13));
}

TEST(ConstraintSetTest, SatisfiedByPinnedAnswers) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  Dataset d = Dataset::Create(dom, {0, 1, 5}).value();
  ConstraintSet q;
  q.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 3; }), 2);
  EXPECT_TRUE(q.SatisfiedBy(d));
  q.AddWithAnswer(CountQuery("high", [](ValueIndex x) { return x >= 3; }), 2);
  EXPECT_FALSE(q.SatisfiedBy(d));  // only one high tuple
}

TEST(ConstraintSetTest, UnpinnedQueriesAreVacuous) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  Dataset d = Dataset::Create(dom, {0}).value();
  ConstraintSet q;
  q.Add(CountQuery("any", [](ValueIndex) { return true; }));
  EXPECT_TRUE(q.SatisfiedBy(d));
}

TEST(ConstraintSetTest, MarginalExpansion) {
  auto dom = MakeDomain223();
  ConstraintSet q;
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{0, 1}}).ok());
  EXPECT_EQ(q.size(), 4u);  // 2 x 2 cells
  // Each domain value matches exactly one cell query.
  for (ValueIndex x = 0; x < dom->size(); ++x) {
    size_t matches = 0;
    for (size_t i = 0; i < q.size(); ++i) {
      if (q.query(i).Matches(x)) ++matches;
    }
    EXPECT_EQ(matches, 1u);
  }
}

TEST(ConstraintSetTest, MarginalWithAnswers) {
  auto dom = MakeDomain223();
  Dataset d =
      Dataset::Create(dom, {dom->Encode({0, 0, 0}), dom->Encode({0, 0, 1}),
                            dom->Encode({1, 1, 2})})
          .value();
  ConstraintSet q;
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{0, 1}}, &d).ok());
  EXPECT_TRUE(q.SatisfiedBy(d));
  // Moving a tuple across marginal cells violates the constraint.
  Dataset moved = d.WithTuple(0, dom->Encode({1, 0, 0})).value();
  EXPECT_FALSE(q.SatisfiedBy(moved));
  // Moving within a cell (changing only A3) keeps it satisfied.
  Dataset within = d.WithTuple(0, dom->Encode({0, 0, 2})).value();
  EXPECT_TRUE(q.SatisfiedBy(within));
}

TEST(ConstraintSetTest, MarginalValidation) {
  auto dom = MakeDomain223();
  ConstraintSet q;
  EXPECT_FALSE(q.AddMarginal(dom, Marginal{{}}).ok());
  EXPECT_FALSE(q.AddMarginal(dom, Marginal{{7}}).ok());
}

TEST(ConstraintSetTest, RectangleValidation) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(8, 2).value());
  ConstraintSet q;
  EXPECT_FALSE(q.AddRectangles(dom, {Rectangle{{0}, {1}}}).ok());  // arity
  EXPECT_FALSE(
      q.AddRectangles(dom, {Rectangle{{3, 0}, {2, 1}}}).ok());  // lo > hi
  EXPECT_FALSE(
      q.AddRectangles(dom, {Rectangle{{0, 0}, {8, 1}}}).ok());  // past edge
  EXPECT_TRUE(q.AddRectangles(dom, {Rectangle{{0, 0}, {2, 2}}}).ok());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.rectangles().size(), 1u);
}

// Example 8.1: the 2x2x3 domain with the [A1,A2] marginal queries is
// sparse w.r.t. the full-domain graph.
TEST(ConstraintSetTest, Example81MarginalIsSparse) {
  auto dom = MakeDomain223();
  ConstraintSet q;
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{0, 1}}).ok());
  FullGraph g(dom->size());
  EXPECT_TRUE(q.IsSparse(g, uint64_t{1} << 20).value());
}

// Two overlapping predicates break sparsity: one move can lift both.
TEST(ConstraintSetTest, OverlappingQueriesNotSparse) {
  auto dom = std::make_shared<const Domain>(Domain::Line(10).value());
  ConstraintSet q;
  q.Add(CountQuery("ge5", [](ValueIndex x) { return x >= 5; }));
  q.Add(CountQuery("ge7", [](ValueIndex x) { return x >= 7; }));
  FullGraph g(dom->size());
  // Moving 0 -> 9 lifts both queries.
  EXPECT_FALSE(q.IsSparse(g, uint64_t{1} << 20).value());
}

// The same overlapping queries *are* sparse w.r.t. a line graph, where
// adjacent values can cross at most one of the two thresholds.
TEST(ConstraintSetTest, SparsityDependsOnGraph) {
  ConstraintSet q;
  q.Add(CountQuery("ge5", [](ValueIndex x) { return x >= 5; }));
  q.Add(CountQuery("ge7", [](ValueIndex x) { return x >= 7; }));
  LineGraph g(10);
  EXPECT_TRUE(q.IsSparse(g, uint64_t{1} << 20).value());
}

TEST(ConstraintSetTest, LiftedLoweredLists) {
  ConstraintSet q;
  q.Add(CountQuery("low", [](ValueIndex x) { return x < 5; }));
  q.Add(CountQuery("high", [](ValueIndex x) { return x >= 5; }));
  // 2 -> 8: lowers "low", lifts "high".
  std::vector<size_t> lifted = q.Lifted(2, 8);
  std::vector<size_t> lowered = q.Lowered(2, 8);
  ASSERT_EQ(lifted.size(), 1u);
  ASSERT_EQ(lowered.size(), 1u);
  EXPECT_EQ(lifted[0], 1u);
  EXPECT_EQ(lowered[0], 0u);
}

TEST(ConstraintSetTest, HasCriticalPair) {
  ConstraintSet q;
  q.Add(CountQuery("low", [](ValueIndex x) { return x < 3; }));
  // Line graph on 6: the edge (2,3) crosses the threshold.
  LineGraph line(6);
  EXPECT_TRUE(q.HasCriticalPair(0, line, 1000).value());
  // Partition {0,1,2} | {3,4,5}: no edge crosses the threshold, so the
  // constraint has an empty critical set (the Sec 4.1 closing example).
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  auto part = PartitionGraph::UniformGrid(dom, {2}).value();
  EXPECT_FALSE(q.HasCriticalPair(0, *part, 1000).value());
  EXPECT_FALSE(q.HasCriticalPair(5, line, 1000).ok());  // bad index
}

}  // namespace
}  // namespace blowfish
