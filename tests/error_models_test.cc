#include "mech/error_models.h"

#include <gtest/gtest.h>

#include <memory>

#include "mech/ordered.h"
#include "util/stats.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

TEST(ErrorModelsTest, LaplaceComponentAndTotal) {
  // Var(Lap(2/0.5)) = 2 * 16 = 32.
  EXPECT_DOUBLE_EQ(LaplaceComponentError(2.0, 0.5), 32.0);
  // Sec 2: complete histogram error 8 |T| / eps^2 with S = 2.
  EXPECT_DOUBLE_EQ(LaplaceTotalError(2.0, 1.0, 100), 800.0);
  EXPECT_DOUBLE_EQ(LaplaceComponentError(0.0, 1.0), 0.0);
}

TEST(ErrorModelsTest, OrderedRangeErrorByPolicy) {
  auto dom = MakeLine(1000);
  // Line: 4/eps^2 (Thm 7.1).
  EXPECT_DOUBLE_EQ(
      OrderedRangeError(Policy::Line(dom).value(), 0.5).value(), 16.0);
  // theta = 10: 4 * 100 / eps^2.
  EXPECT_DOUBLE_EQ(
      OrderedRangeError(Policy::DistanceThreshold(dom, 10.0).value(), 1.0)
          .value(),
      400.0);
  // 2-D domain rejected.
  auto grid = std::make_shared<const Domain>(Domain::Grid(8, 2).value());
  EXPECT_FALSE(OrderedRangeError(Policy::FullDomain(grid).value(), 1.0)
                   .ok());
}

TEST(ErrorModelsTest, OrderedHierarchicalModelBoundaries) {
  auto dom = MakeLine(4096);
  // theta = 1: the OH optimum equals the pure ordered error 4/eps^2.
  double oh_line =
      OrderedHierarchicalRangeError(Policy::Line(dom).value(), 1.0, 16)
          .value();
  EXPECT_NEAR(oh_line,
              OrderedRangeError(Policy::Line(dom).value(), 1.0).value(),
              0.02);
  // theta = |T|: the OH optimum equals the hierarchical-style c2 term.
  double oh_full = OrderedHierarchicalRangeError(
                       Policy::FullDomain(dom).value(), 1.0, 16)
                       .value();
  EXPECT_GT(oh_full, oh_line * 10);
}

TEST(ErrorModelsTest, KMeansCentroidError) {
  auto grid = std::make_shared<const Domain>(Domain::Grid(64, 2).value());
  Policy full = Policy::FullDomain(grid).value();
  Policy theta = Policy::DistanceThreshold(grid, 4.0).value();
  double e_full = KMeansCentroidError(full, 1.0, 10, 100.0).value();
  double e_theta = KMeansCentroidError(theta, 1.0, 10, 100.0).value();
  EXPECT_GT(e_full, e_theta);  // weaker policy -> less predicted noise
  // Finest partition: zero error.
  Policy finest = Policy::GridPartition(grid, {64, 64}).value();
  EXPECT_DOUBLE_EQ(KMeansCentroidError(finest, 1.0, 10, 100.0).value(),
                   0.0);
  EXPECT_FALSE(KMeansCentroidError(full, 1.0, 0, 100.0).ok());
  EXPECT_FALSE(KMeansCentroidError(full, 1.0, 10, 0.0).ok());
}

TEST(ErrorModelsTest, BestRangeStrategySwitchesWithTheta) {
  auto dom = MakeLine(4096);
  // Line graph: ordered wins.
  auto line_choice =
      BestRangeStrategy(Policy::Line(dom).value(), 1.0, 16).value();
  EXPECT_STREQ(line_choice.name, "ordered");
  // Full domain: a hierarchical-style strategy wins.
  auto full_choice =
      BestRangeStrategy(Policy::FullDomain(dom).value(), 1.0, 16).value();
  EXPECT_STRNE(full_choice.name, "ordered");
  // Mid theta: OH at the optimal split should never lose to pure ordered.
  auto mid = BestRangeStrategy(
                 Policy::DistanceThreshold(dom, 64.0).value(), 1.0, 16)
                 .value();
  EXPECT_LE(mid.predicted_error,
            OrderedRangeError(
                Policy::DistanceThreshold(dom, 64.0).value(), 1.0)
                .value() +
                1e-9);
}

// The ordered model is not just internally consistent — it predicts the
// measured error of the actual mechanism.
TEST(ErrorModelsTest, OrderedModelMatchesMeasurement) {
  auto dom = MakeLine(512);
  Policy p = Policy::DistanceThreshold(dom, 4.0).value();
  Histogram data(512);
  Random drng(3);
  for (int i = 0; i < 5000; ++i) {
    data.Add(static_cast<size_t>(drng.UniformInt(0, 511)));
  }
  const double eps = 0.5;
  double predicted = OrderedRangeError(p, eps).value();
  Random rng(5);
  double mse = 0.0;
  const int reps = 400;
  double truth = data.RangeSum(50, 300).value();
  for (int rep = 0; rep < reps; ++rep) {
    auto out = OrderedMechanism(data, p, eps, rng, false).value();
    double e = out.RangeQuery(50, 300).value() - truth;
    mse += e * e;
  }
  mse /= reps;
  // Within 35% of the analytic value (sampling noise + clamping effects).
  EXPECT_NEAR(mse, predicted, predicted * 0.35);
}

}  // namespace
}  // namespace blowfish
