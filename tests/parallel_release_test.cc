#include "mech/parallel_release.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(std::shared_ptr<const Domain> dom) {
  return Dataset::Create(dom, {0, 1, 2, 3, 4, 5}).value();
}

TEST(ParallelReleaseTest, ReleasesPerGroupAndChargesMax) {
  auto dom = MakeLine(6);
  Dataset data = MakeData(dom);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(1);
  PrivacyAccountant acct;
  auto result = ParallelHistogramRelease(data, p, {{0, 1, 2}, {3, 4, 5}},
                                         {0.5, 0.3}, rng, &acct)
                    .value();
  ASSERT_EQ(result.group_histograms.size(), 2u);
  EXPECT_EQ(result.group_histograms[0].size(), 6u);
  EXPECT_DOUBLE_EQ(result.total_epsilon, 0.5);
  EXPECT_DOUBLE_EQ(acct.TotalEpsilon(), 0.5);
}

TEST(ParallelReleaseTest, Validation) {
  auto dom = MakeLine(6);
  Dataset data = MakeData(dom);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(2);
  // Overlapping groups.
  EXPECT_FALSE(ParallelHistogramRelease(data, p, {{0, 1}, {1, 2}},
                                        {0.5, 0.5}, rng)
                   .ok());
  // Unknown id.
  EXPECT_FALSE(
      ParallelHistogramRelease(data, p, {{0, 9}}, {0.5}, rng).ok());
  // Size mismatch / empty.
  EXPECT_FALSE(
      ParallelHistogramRelease(data, p, {{0}}, {0.5, 0.5}, rng).ok());
  EXPECT_FALSE(ParallelHistogramRelease(data, p, {}, {}, rng).ok());
  // Non-positive epsilon.
  EXPECT_FALSE(
      ParallelHistogramRelease(data, p, {{0}}, {0.0}, rng).ok());
}

// The Sec 4.1 gender example: a constraint whose answer an edge can flip
// makes parallel composition unsound; the helper must refuse.
TEST(ParallelReleaseTest, RejectsCouplingConstraints) {
  auto dom = MakeLine(6);
  ConstraintSet cs;
  cs.AddWithAnswer(
      CountQuery("males", [](ValueIndex x) { return x < 3; }), 3);
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(6),
                            std::move(cs))
                 .value();
  Dataset data = MakeData(dom);
  Random rng(3);
  auto result =
      ParallelHistogramRelease(data, p, {{0, 1, 2}, {3, 4, 5}}, {0.5, 0.5},
                               rng);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// The paper's closing Sec 4.1 example: component-count constraints over a
// partition graph have empty critical sets — parallel release allowed.
TEST(ParallelReleaseTest, AllowsComponentCountConstraints) {
  auto dom = MakeLine(6);
  auto part = PartitionGraph::UniformGrid(dom, {2}).value();
  ConstraintSet cs;
  cs.AddWithAnswer(
      CountQuery("in_S", [](ValueIndex x) { return x < 3; }), 3);
  Policy p = Policy::Create(
                 dom, std::shared_ptr<const SecretGraph>(part.release()),
                 std::move(cs))
                 .value();
  Dataset data = MakeData(dom);
  Random rng(4);
  EXPECT_TRUE(ParallelHistogramRelease(data, p, {{0, 1, 2}, {3, 4, 5}},
                                       {0.4, 0.4}, rng)
                  .ok());
}

// Unbiasedness: each group's noisy histogram is centered on that group's
// true histogram.
TEST(ParallelReleaseTest, GroupHistogramsUnbiased) {
  auto dom = MakeLine(4);
  Dataset data = Dataset::Create(dom, {0, 0, 1, 3, 3, 3}).value();
  Policy p = Policy::FullDomain(dom).value();
  Random rng(5);
  double total0 = 0.0;
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    auto result = ParallelHistogramRelease(data, p, {{0, 1, 2}, {3, 4, 5}},
                                           {1.0, 1.0}, rng)
                      .value();
    total0 += result.group_histograms[0][0];
  }
  // Group 0 = tuples {0, 0, 1}: bucket 0 holds 2.
  EXPECT_NEAR(total0 / reps, 2.0, 0.15);
}

}  // namespace
}  // namespace blowfish
