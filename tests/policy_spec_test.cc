#include "core/policy_spec.h"

#include <gtest/gtest.h>

namespace blowfish {
namespace {

TEST(PolicySpecTest, ParsesFullExample) {
  const char* spec = R"(
# salary microdata policy
attribute = salary_k : 200 : 1.0
attribute = dept : 12
graph = distance : 10.0
epsilon = 0.5
)";
  ParsedPolicy parsed = ParsePolicySpec(spec).value();
  EXPECT_EQ(parsed.policy.domain().num_attributes(), 2u);
  EXPECT_EQ(parsed.policy.domain().attribute(0).name, "salary_k");
  EXPECT_EQ(parsed.policy.domain().attribute(1).cardinality, 12u);
  EXPECT_NE(parsed.policy.graph().name().find("theta=10"),
            std::string::npos);
  ASSERT_TRUE(parsed.epsilon.has_value());
  EXPECT_DOUBLE_EQ(*parsed.epsilon, 0.5);
}

TEST(PolicySpecTest, AllGraphKinds) {
  EXPECT_EQ(ParsePolicySpec("attribute = a : 8\ngraph = full\n")
                .value()
                .policy.graph()
                .name(),
            "full");
  EXPECT_EQ(ParsePolicySpec("attribute = a : 8\ngraph = line\n")
                .value()
                .policy.graph()
                .name(),
            "line");
  EXPECT_EQ(
      ParsePolicySpec("attribute = a : 8\nattribute = b : 4\n"
                      "graph = attribute\n")
          .value()
          .policy.graph()
          .name(),
      "attr");
  EXPECT_EQ(
      ParsePolicySpec("attribute = a : 8\nattribute = b : 8\n"
                      "graph = grid_partition : 2, 4\n")
          .value()
          .policy.graph()
          .name(),
      "partition|8");
}

TEST(PolicySpecTest, DefaultScaleIsOne) {
  ParsedPolicy p =
      ParsePolicySpec("attribute = a : 8\ngraph = full\n").value();
  EXPECT_DOUBLE_EQ(p.policy.domain().attribute(0).scale, 1.0);
  EXPECT_FALSE(p.epsilon.has_value());
}

TEST(PolicySpecTest, Rejections) {
  // No attributes / no graph.
  EXPECT_FALSE(ParsePolicySpec("graph = full\n").ok());
  EXPECT_FALSE(ParsePolicySpec("attribute = a : 8\n").ok());
  // Unknown key / graph kind.
  EXPECT_FALSE(
      ParsePolicySpec("attribute = a : 8\nfoo = bar\ngraph = full\n").ok());
  EXPECT_FALSE(
      ParsePolicySpec("attribute = a : 8\ngraph = ring\n").ok());
  // Malformed attribute.
  EXPECT_FALSE(ParsePolicySpec("attribute = a\ngraph = full\n").ok());
  EXPECT_FALSE(
      ParsePolicySpec("attribute = a : x\ngraph = full\n").ok());
  EXPECT_FALSE(
      ParsePolicySpec("attribute = a : 8 : 0\ngraph = full\n").ok());
  // Distance without theta; line on 2-D; bad epsilon.
  EXPECT_FALSE(
      ParsePolicySpec("attribute = a : 8\ngraph = distance\n").ok());
  EXPECT_FALSE(ParsePolicySpec("attribute = a : 8\nattribute = b : 8\n"
                               "graph = line\n")
                   .ok());
  EXPECT_FALSE(ParsePolicySpec(
                   "attribute = a : 8\ngraph = full\nepsilon = -1\n")
                   .ok());
  // Missing '='.
  EXPECT_FALSE(ParsePolicySpec("attribute a : 8\ngraph = full\n").ok());
}

TEST(PolicySpecTest, CommentsAndWhitespaceIgnored) {
  const char* spec =
      "  # leading comment\n"
      "\n"
      "attribute = a : 8   # trailing comment\n"
      "graph = full\n";
  EXPECT_TRUE(ParsePolicySpec(spec).ok());
}

TEST(PolicySpecTest, RoundTripThroughSerialization) {
  const char* spec =
      "attribute = lat : 400 : 5.55\n"
      "attribute = lon : 300 : 5.55\n"
      "graph = distance : 100\n"
      "epsilon = 0.25\n";
  ParsedPolicy first = ParsePolicySpec(spec).value();
  std::string serialized =
      PolicyToSpec(first.policy, first.epsilon).value();
  ParsedPolicy second = ParsePolicySpec(serialized).value();
  EXPECT_EQ(second.policy.domain().size(), first.policy.domain().size());
  EXPECT_EQ(second.policy.graph().name(), first.policy.graph().name());
  EXPECT_DOUBLE_EQ(*second.epsilon, 0.25);
}

TEST(PolicySpecTest, SerializationRejectsConstraints) {
  auto dom = std::make_shared<const Domain>(Domain::Line(8).value());
  ConstraintSet cs;
  cs.Add(CountQuery("q", [](ValueIndex x) { return x < 4; }));
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(8),
                            std::move(cs))
                 .value();
  EXPECT_FALSE(PolicyToSpec(p).ok());
}

}  // namespace
}  // namespace blowfish
