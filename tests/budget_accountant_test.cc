#include "engine/budget_accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace blowfish {
namespace {

TEST(BudgetAccountantTest, SequentialSpendsAccumulate) {
  BudgetAccountant accountant(1.0);
  auto r1 = accountant.ChargeSequential("", 0.3, "q1");
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->charged, 0.3);
  EXPECT_DOUBLE_EQ(r1->remaining, 0.7);
  auto r2 = accountant.ChargeSequential("", 0.5, "q2");
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->remaining, 0.2);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.8);
}

TEST(BudgetAccountantTest, RefusesOverspendAndLeavesLedgerUntouched) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.ChargeSequential("", 0.8).ok());
  auto refused = accountant.ChargeSequential("", 0.3);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The refused charge must not count.
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.8);
  // A smaller charge that fits still succeeds afterwards.
  EXPECT_TRUE(accountant.ChargeSequential("", 0.2).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 1.0);
}

TEST(BudgetAccountantTest, ExactBudgetIsAllowed) {
  BudgetAccountant accountant(1.0);
  // Ten charges of 0.1 must sum to exactly the budget despite floating
  // point accumulation.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(accountant.ChargeSequential("", 0.1).ok()) << i;
  }
  EXPECT_FALSE(accountant.ChargeSequential("", 0.01).ok());
}

TEST(BudgetAccountantTest, ParallelGroupCostsMax) {
  BudgetAccountant accountant(1.0);
  auto receipt = accountant.ChargeParallel("", {0.2, 0.5, 0.3}, "group");
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->parallel);
  EXPECT_DOUBLE_EQ(receipt->charged, 0.5);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.5);
}

TEST(BudgetAccountantTest, ParallelGroupRefusedWhenMaxOverBudget) {
  BudgetAccountant accountant(0.4);
  auto refused = accountant.ChargeParallel("", {0.2, 0.5});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.0);
}

TEST(BudgetAccountantTest, NamedSessionsAreIndependent) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.OpenSession("alice", 2.0).ok());
  ASSERT_TRUE(accountant.ChargeSequential("alice", 1.5).ok());
  // Auto-created session "bob" still has the default budget.
  ASSERT_TRUE(accountant.ChargeSequential("bob", 0.9).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent("alice"), 1.5);
  EXPECT_DOUBLE_EQ(accountant.Spent("bob"), 0.9);
  EXPECT_DOUBLE_EQ(accountant.Remaining("alice"), 0.5);
  // Alice's extra headroom does not leak to bob.
  EXPECT_FALSE(accountant.ChargeSequential("bob", 0.5).ok());
}

TEST(BudgetAccountantTest, DuplicateOpenSessionFails) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.OpenSession("alice", 2.0).ok());
  EXPECT_FALSE(accountant.OpenSession("alice", 3.0).ok());
  EXPECT_FALSE(accountant.OpenSession("x", -1.0).ok());
}

TEST(BudgetAccountantTest, RejectsNegativeEpsilon) {
  BudgetAccountant accountant(1.0);
  EXPECT_EQ(accountant.ChargeSequential("", -0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.ChargeParallel("", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.ChargeParallel("", {0.1, -0.2}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BudgetAccountantTest, RefundRestoresTheBalance) {
  BudgetAccountant accountant(1.0);
  auto receipt = accountant.ChargeSequential("", 0.4, "q");
  ASSERT_TRUE(receipt.ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.4);
  ASSERT_TRUE(accountant.Refund(*receipt).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.0);
  EXPECT_DOUBLE_EQ(accountant.Remaining(""), 1.0);
  // The refunded epsilon is spendable again.
  EXPECT_TRUE(accountant.ChargeSequential("", 1.0).ok());
}

TEST(BudgetAccountantTest, RefundValidatesItsInputs) {
  BudgetAccountant accountant(1.0);
  BudgetReceipt ghost;
  ghost.session = "nobody";
  ghost.charged = 0.2;
  EXPECT_EQ(accountant.Refund(ghost).code(), StatusCode::kNotFound);

  auto receipt = accountant.ChargeSequential("", 0.3);
  ASSERT_TRUE(receipt.ok());
  BudgetReceipt inflated = *receipt;
  inflated.charged = 0.9;  // more than the session ever spent
  EXPECT_EQ(accountant.Refund(inflated).code(),
            StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.3);

  BudgetReceipt negative = *receipt;
  negative.charged = -0.1;
  EXPECT_EQ(accountant.Refund(negative).code(),
            StatusCode::kInvalidArgument);

  // A zero charge refunds as a no-op, even for an unknown session.
  BudgetReceipt zero;
  zero.session = "nobody";
  zero.charged = 0.0;
  EXPECT_TRUE(accountant.Refund(zero).ok());
}

TEST(BudgetAccountantTest, ReceiptRefundsAtMostOnce) {
  // Replaying a receipt (or a copy of it) must not mint budget.
  BudgetAccountant accountant(1.0);
  auto first = accountant.ChargeSequential("", 0.3);
  auto second = accountant.ChargeSequential("", 0.3);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->charge_id, second->charge_id);
  ASSERT_TRUE(accountant.Refund(*first).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.3);
  const BudgetReceipt replay = *first;  // copies refund no better
  EXPECT_EQ(accountant.Refund(replay).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.3);
  // A receipt forging a foreign charge_id with the wrong amount is also
  // rejected.
  BudgetReceipt forged = *second;
  forged.charged = 0.25;
  EXPECT_EQ(accountant.Refund(forged).code(),
            StatusCode::kInvalidArgument);
  // The untouched second receipt still refunds normally, once.
  EXPECT_TRUE(accountant.Refund(*second).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.0);
}

TEST(BudgetAccountantTest, ListSessionsSnapshotsEveryLedger) {
  BudgetAccountant accountant(5.0);
  ASSERT_TRUE(accountant.OpenSession("alice", 2.0).ok());
  ASSERT_TRUE(accountant.ChargeSequential("alice", 0.5).ok());
  ASSERT_TRUE(accountant.ChargeSequential("", 1.0).ok());
  auto sessions = accountant.ListSessions();
  ASSERT_EQ(sessions.size(), 2u);
  // std::map order: "" sorts before "alice".
  EXPECT_EQ(sessions[0].name, "");
  EXPECT_DOUBLE_EQ(sessions[0].budget, 5.0);
  EXPECT_DOUBLE_EQ(sessions[0].spent, 1.0);
  EXPECT_DOUBLE_EQ(sessions[0].remaining, 4.0);
  EXPECT_EQ(sessions[1].name, "alice");
  EXPECT_DOUBLE_EQ(sessions[1].budget, 2.0);
  EXPECT_DOUBLE_EQ(sessions[1].spent, 0.5);
  EXPECT_DOUBLE_EQ(sessions[1].remaining, 1.5);
}

TEST(BudgetAccountantTest, ConcurrentChargesNeverOverspend) {
  BudgetAccountant accountant(1.0);
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&accountant]() {
      for (int i = 0; i < kChargesPerThread; ++i) {
        (void)accountant.ChargeSequential("", 0.01);
      }
    });
  }
  for (auto& t : threads) t.join();
  // 400 attempted charges of 0.01 against a budget of 1.0: exactly the
  // first 100 (in arrival order) may land.
  EXPECT_LE(accountant.Spent(""), 1.0 + 1e-9);
  EXPECT_NEAR(accountant.Spent(""), 1.0, 1e-9);
}

}  // namespace
}  // namespace blowfish
