#include "engine/budget_accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace blowfish {
namespace {

TEST(BudgetAccountantTest, SequentialSpendsAccumulate) {
  BudgetAccountant accountant(1.0);
  auto r1 = accountant.ChargeSequential("", 0.3, "q1");
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->charged, 0.3);
  EXPECT_DOUBLE_EQ(r1->remaining, 0.7);
  auto r2 = accountant.ChargeSequential("", 0.5, "q2");
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->remaining, 0.2);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.8);
}

TEST(BudgetAccountantTest, RefusesOverspendAndLeavesLedgerUntouched) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.ChargeSequential("", 0.8).ok());
  auto refused = accountant.ChargeSequential("", 0.3);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The refused charge must not count.
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.8);
  // A smaller charge that fits still succeeds afterwards.
  EXPECT_TRUE(accountant.ChargeSequential("", 0.2).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 1.0);
}

TEST(BudgetAccountantTest, ExactBudgetIsAllowed) {
  BudgetAccountant accountant(1.0);
  // Ten charges of 0.1 must sum to exactly the budget despite floating
  // point accumulation.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(accountant.ChargeSequential("", 0.1).ok()) << i;
  }
  EXPECT_FALSE(accountant.ChargeSequential("", 0.01).ok());
}

TEST(BudgetAccountantTest, ParallelGroupCostsMax) {
  BudgetAccountant accountant(1.0);
  auto receipt = accountant.ChargeParallel("", {0.2, 0.5, 0.3}, "group");
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->parallel);
  EXPECT_DOUBLE_EQ(receipt->charged, 0.5);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.5);
}

TEST(BudgetAccountantTest, ParallelGroupRefusedWhenMaxOverBudget) {
  BudgetAccountant accountant(0.4);
  auto refused = accountant.ChargeParallel("", {0.2, 0.5});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(accountant.Spent(""), 0.0);
}

TEST(BudgetAccountantTest, NamedSessionsAreIndependent) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.OpenSession("alice", 2.0).ok());
  ASSERT_TRUE(accountant.ChargeSequential("alice", 1.5).ok());
  // Auto-created session "bob" still has the default budget.
  ASSERT_TRUE(accountant.ChargeSequential("bob", 0.9).ok());
  EXPECT_DOUBLE_EQ(accountant.Spent("alice"), 1.5);
  EXPECT_DOUBLE_EQ(accountant.Spent("bob"), 0.9);
  EXPECT_DOUBLE_EQ(accountant.Remaining("alice"), 0.5);
  // Alice's extra headroom does not leak to bob.
  EXPECT_FALSE(accountant.ChargeSequential("bob", 0.5).ok());
}

TEST(BudgetAccountantTest, DuplicateOpenSessionFails) {
  BudgetAccountant accountant(1.0);
  ASSERT_TRUE(accountant.OpenSession("alice", 2.0).ok());
  EXPECT_FALSE(accountant.OpenSession("alice", 3.0).ok());
  EXPECT_FALSE(accountant.OpenSession("x", -1.0).ok());
}

TEST(BudgetAccountantTest, RejectsNegativeEpsilon) {
  BudgetAccountant accountant(1.0);
  EXPECT_EQ(accountant.ChargeSequential("", -0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.ChargeParallel("", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.ChargeParallel("", {0.1, -0.2}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BudgetAccountantTest, ConcurrentChargesNeverOverspend) {
  BudgetAccountant accountant(1.0);
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&accountant]() {
      for (int i = 0; i < kChargesPerThread; ++i) {
        (void)accountant.ChargeSequential("", 0.01);
      }
    });
  }
  for (auto& t : threads) t.join();
  // 400 attempted charges of 0.01 against a budget of 1.0: exactly the
  // first 100 (in arrival order) may land.
  EXPECT_LE(accountant.Spent(""), 1.0 + 1e-9);
  EXPECT_NEAR(accountant.Spent(""), 1.0, 1e-9);
}

}  // namespace
}  // namespace blowfish
