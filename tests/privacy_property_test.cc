// End-to-end privacy property tests.
//
// For independent-Laplace mechanisms the worst-case log-likelihood ratio
// between outputs on two inputs is analytic: sum over released components
// of |true_i(D1) - true_i(D2)| / scale_i. A mechanism satisfies
// (eps, P)-Blowfish privacy iff that quantity is <= eps for every
// neighbour pair (D1, D2) in N(P). These tests compute the quantity
// exactly over brute-force-enumerated neighbours (Def 4.1) — no sampling
// slack — for every mechanism in the library.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/neighbors.h"
#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/sensitivity.h"
#include "mech/constrained_inference.h"
#include "mech/ordered_hierarchical.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

std::vector<double> HistogramOf(const Dataset& d) {
  std::vector<double> h(d.domain().size(), 0.0);
  for (ValueIndex t : d.tuples()) h[t] += 1.0;
  return h;
}

std::vector<double> CumulativeOf(const Dataset& d) {
  std::vector<double> h = HistogramOf(d);
  for (size_t i = 1; i < h.size(); ++i) h[i] += h[i - 1];
  return h;
}

/// Max log-likelihood ratio of an independent-Laplace release with uniform
/// scale: ||f(D1) - f(D2)||_1 / scale.
double LaplaceLogRatio(const std::vector<double>& f1,
                       const std::vector<double>& f2, double scale) {
  double l1 = 0.0;
  for (size_t i = 0; i < f1.size(); ++i) l1 += std::fabs(f1[i] - f2[i]);
  return l1 / scale;
}

// --- Laplace histogram release under unconstrained policies ---

class LaplaceHistogramPrivacyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(LaplaceHistogramPrivacyTest, LogRatioBoundedByEpsilon) {
  auto dom = MakeLine(4);
  std::string kind = GetParam();
  Policy p = kind == "full"   ? Policy::FullDomain(dom).value()
             : kind == "line" ? Policy::Line(dom).value()
                              : Policy::DistanceThreshold(dom, 2.0).value();
  const double eps = 0.7;
  double sens = HistogramSensitivity(p.graph());
  double scale = sens / eps;
  NeighborhoodResult nbrs = EnumerateNeighbors(p, 2, 1000).value();
  ASSERT_FALSE(nbrs.neighbor_pairs.empty());
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    double ratio = LaplaceLogRatio(HistogramOf(nbrs.universe[i]),
                                   HistogramOf(nbrs.universe[j]), scale);
    EXPECT_LE(ratio, eps + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LaplaceHistogramPrivacyTest,
                         ::testing::Values("full", "line", "theta2"));

// --- Ordered mechanism: cumulative release at Lap(sens/eps) ---

class OrderedPrivacyTest : public ::testing::TestWithParam<double> {};

TEST_P(OrderedPrivacyTest, LogRatioBoundedByEpsilon) {
  const double theta = GetParam();
  auto dom = MakeLine(5);
  Policy p = Policy::DistanceThreshold(dom, theta).value();
  const double eps = 0.5;
  double sens = CumulativeHistogramSensitivity(p).value();
  ASSERT_GT(sens, 0.0);
  double scale = sens / eps;
  NeighborhoodResult nbrs = EnumerateNeighbors(p, 2, 10000).value();
  double worst = 0.0;
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    worst = std::max(worst,
                     LaplaceLogRatio(CumulativeOf(nbrs.universe[i]),
                                     CumulativeOf(nbrs.universe[j]), scale));
  }
  EXPECT_LE(worst, eps + 1e-9);
  // The calibration is tight: some neighbour attains the full budget.
  EXPECT_NEAR(worst, eps, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, OrderedPrivacyTest,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

// --- Constrained Laplace histogram (Thm 8.2 calibration) ---

TEST(ConstrainedHistogramPrivacyTest, PolicyGraphBoundCoversNeighbors) {
  auto dom = MakeLine(4);
  ConstraintSet cs;
  cs.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  auto graph = std::make_shared<FullGraph>(4);
  PolicyGraph pg = PolicyGraph::Build(cs, *graph, 1000).value();
  double sens = pg.HistogramSensitivityBound().value();
  Policy p = Policy::Create(dom, graph, std::move(cs)).value();
  const double eps = 1.0;
  double scale = sens / eps;
  NeighborhoodResult nbrs = EnumerateNeighbors(p, 2, 10000).value();
  ASSERT_FALSE(nbrs.neighbor_pairs.empty());
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    double ratio = LaplaceLogRatio(HistogramOf(nbrs.universe[i]),
                                   HistogramOf(nbrs.universe[j]), scale);
    EXPECT_LE(ratio, eps + 1e-9);
  }
}

// --- Ordered Hierarchical mechanism: Thm 7.2(1) ---
//
// Reconstruct the OH structure's *noise-free* node values for neighbouring
// datasets and charge each node's absolute difference against its noise
// scale; the total must not exceed eps.

struct OHPlan {
  size_t theta;
  size_t fanout;
  double eps_s;
  double eps_h;
};

double OHLogRatio(const std::vector<double>& hist1,
                  const std::vector<double>& hist2, const OHPlan& plan) {
  const size_t n = hist1.size();
  const size_t theta = plan.theta;
  const size_t k = (n + theta - 1) / theta;
  auto cumulative = [](const std::vector<double>& h) {
    std::vector<double> c = h;
    for (size_t i = 1; i < c.size(); ++i) c[i] += c[i - 1];
    return c;
  };
  std::vector<double> c1 = cumulative(hist1);
  std::vector<double> c2 = cumulative(hist2);

  double total = 0.0;
  // S nodes l >= 2 at Lap(1/eps_s): each unit of difference costs eps_s.
  if (theta > 1 || k > 1) {
    for (size_t l = 1; l < k; ++l) {
      size_t end = std::min((l + 1) * theta, n) - 1;
      total += std::fabs(c1[end] - c2[end]) * plan.eps_s;
    }
  }
  if (theta == 1) {
    // s_1 released at Lap(1/eps): eps = eps_s here (theta=1 puts the whole
    // budget on S nodes).
    total += std::fabs(c1[theta - 1] - c2[theta - 1]) * plan.eps_s;
    return total;
  }
  // H trees: per-node scale 2(h+1)/eps_tree, matching the implementation's
  // exact path-length calibration.
  size_t height = 0;
  {
    IntervalTree probe = IntervalTree::Build(std::min(theta, n),
                                             plan.fanout)
                             .value();
    height = probe.height();
  }
  for (size_t l = 0; l < k; ++l) {
    size_t lo = l * theta;
    size_t hi = std::min(lo + theta, n);
    IntervalTree t1 = IntervalTree::Build(hi - lo, plan.fanout).value();
    IntervalTree t2 = t1;
    t1.PopulateFromLeaves(
        std::vector<double>(hist1.begin() + lo, hist1.begin() + hi));
    t2.PopulateFromLeaves(
        std::vector<double>(hist2.begin() + lo, hist2.begin() + hi));
    double tree_eps = (l == 0) ? plan.eps_s + plan.eps_h : plan.eps_h;
    double per_unit = tree_eps / (2.0 * static_cast<double>(height + 1));
    for (size_t lev = 0; lev < t1.levels.size(); ++lev) {
      for (size_t i = 0; i < t1.levels[lev].size(); ++i) {
        total += std::fabs(t1.levels[lev][i] - t2.levels[lev][i]) * per_unit;
      }
    }
  }
  return total;
}

class OHPrivacyTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(OHPrivacyTest, Theorem72BudgetCoversAllNeighbors) {
  auto [theta_steps, frac] = GetParam();
  const size_t n = 8;
  auto dom = MakeLine(n);
  Policy p =
      Policy::DistanceThreshold(dom, static_cast<double>(theta_steps))
          .value();
  const double eps = 0.9;
  OHPlan plan;
  plan.theta = theta_steps;
  plan.fanout = 2;
  plan.eps_s = frac * eps;
  plan.eps_h = eps - plan.eps_s;
  if (plan.theta == 1) {
    plan.eps_s = eps;
    plan.eps_h = 0;
  }
  NeighborhoodResult nbrs = EnumerateNeighbors(p, 2, 100000).value();
  ASSERT_FALSE(nbrs.neighbor_pairs.empty());
  double worst = 0.0;
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    worst = std::max(worst, OHLogRatio(HistogramOf(nbrs.universe[i]),
                                       HistogramOf(nbrs.universe[j]), plan));
  }
  EXPECT_LE(worst, eps + 1e-9) << "theta=" << theta_steps
                               << " frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(
    Plans, OHPrivacyTest,
    ::testing::Values(std::make_tuple(size_t{1}, 1.0),
                      std::make_tuple(size_t{2}, 0.5),
                      std::make_tuple(size_t{2}, 0.3),
                      std::make_tuple(size_t{4}, 0.5),
                      std::make_tuple(size_t{8}, 0.0)));

// --- Hierarchical mechanism (DP baseline) ---

TEST(HierarchicalPrivacyTest, PerLevelBudgetCoversNeighbors) {
  const size_t n = 8;
  auto dom = MakeLine(n);
  Policy p = Policy::FullDomain(dom).value();
  const double eps = 0.8;
  const size_t fanout = 2;
  IntervalTree shape = IntervalTree::Build(n, fanout).value();
  const size_t h = shape.height();
  const double per_node_eps = eps / (2.0 * static_cast<double>(h));
  NeighborhoodResult nbrs = EnumerateNeighbors(p, 2, 100000).value();
  double worst = 0.0;
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    IntervalTree t1 = shape, t2 = shape;
    t1.PopulateFromLeaves(HistogramOf(nbrs.universe[i]));
    t2.PopulateFromLeaves(HistogramOf(nbrs.universe[j]));
    double total = 0.0;
    for (size_t lev = 1; lev < t1.levels.size(); ++lev) {  // root is public
      for (size_t idx = 0; idx < t1.levels[lev].size(); ++idx) {
        total +=
            std::fabs(t1.levels[lev][idx] - t2.levels[lev][idx]) *
            per_node_eps;
      }
    }
    worst = std::max(worst, total);
  }
  EXPECT_LE(worst, eps + 1e-9);
}

// --- Sequential composition (Thm 4.1) sanity via the accountant model ---

TEST(CompositionPrivacyTest, KMeansBudgetDecomposition) {
  // SuLQ k-means spends (eps/T)/2 on q_size and (eps/T)/2 on q_sum per
  // iteration; summed over T iterations that is exactly eps.
  const double eps = 0.9;
  const size_t iterations = 10;
  double total = 0.0;
  for (size_t t = 0; t < iterations; ++t) {
    total += eps / iterations / 2.0;  // q_size
    total += eps / iterations / 2.0;  // q_sum
  }
  EXPECT_NEAR(total, eps, 1e-12);
}

}  // namespace
}  // namespace blowfish
