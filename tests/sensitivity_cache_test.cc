#include "engine/sensitivity_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "core/secret_graph.h"

namespace blowfish {
namespace {

TEST(SensitivityCacheTest, MissThenHit) {
  SensitivityCache cache(8);
  int computes = 0;
  auto compute = [&computes]() -> StatusOr<double> {
    ++computes;
    return 2.0;
  };
  auto first = cache.GetOrCompute("P", "h", compute);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(*first, 2.0);
  auto second = cache.GetOrCompute("P", "h", compute);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(*second, 2.0);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SensitivityCacheTest, DistinctKeysAreDistinctEntries) {
  SensitivityCache cache(8);
  ASSERT_TRUE(
      cache.GetOrCompute("P", "h", []() -> StatusOr<double> { return 2.0; })
          .ok());
  ASSERT_TRUE(cache
                  .GetOrCompute("P", "S_T",
                                []() -> StatusOr<double> { return 7.0; })
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompute("P2", "h",
                                []() -> StatusOr<double> { return 4.0; })
                  .ok());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_DOUBLE_EQ(*cache.GetOrCompute(
                       "P", "h", []() -> StatusOr<double> { return -1.0; }),
                   2.0);
}

TEST(SensitivityCacheTest, ErrorsAreNotCached) {
  SensitivityCache cache(8);
  int computes = 0;
  auto failing = [&computes]() -> StatusOr<double> {
    ++computes;
    return Status::ResourceExhausted("edge budget");
  };
  EXPECT_FALSE(cache.GetOrCompute("P", "h", failing).ok());
  EXPECT_FALSE(cache.GetOrCompute("P", "h", failing).ok());
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
  // A later success for the same key is cached normally.
  ASSERT_TRUE(
      cache.GetOrCompute("P", "h", []() -> StatusOr<double> { return 2.0; })
          .ok());
  EXPECT_TRUE(cache.Contains("P", "h"));
}

TEST(SensitivityCacheTest, LruEviction) {
  SensitivityCache cache(2);
  auto value = [](double v) {
    return [v]() -> StatusOr<double> { return v; };
  };
  ASSERT_TRUE(cache.GetOrCompute("P", "a", value(1)).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "b", value(2)).ok());
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_TRUE(cache.GetOrCompute("P", "a", value(-1)).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "c", value(3)).ok());
  EXPECT_TRUE(cache.Contains("P", "a"));
  EXPECT_FALSE(cache.Contains("P", "b"));
  EXPECT_TRUE(cache.Contains("P", "c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SensitivityCacheTest, ZeroCapacityAlwaysComputes) {
  SensitivityCache cache(0);
  int computes = 0;
  auto compute = [&computes]() -> StatusOr<double> {
    ++computes;
    return 2.0;
  };
  ASSERT_TRUE(cache.GetOrCompute("P", "h", compute).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "h", compute).ok());
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SensitivityCacheTest, ConcurrentAccessComputesOnce) {
  SensitivityCache cache(8);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 100; ++i) {
        auto v = cache.GetOrCompute("P", "h",
                                    [&computes]() -> StatusOr<double> {
                                      ++computes;
                                      return 2.0;
                                    });
        ASSERT_TRUE(v.ok());
        ASSERT_DOUBLE_EQ(*v, 2.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Compute runs under the cache lock: exactly one execution.
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 800u);
}

TEST(SensitivityCacheTest, PolicyFingerprintSeparatesPolicies) {
  auto domain = std::make_shared<const Domain>(Domain::Line(16).value());
  Policy full = Policy::FullDomain(domain).value();
  Policy line = Policy::Line(domain).value();
  Policy theta = Policy::DistanceThreshold(domain, 4.0).value();
  const std::string fp_full = SensitivityCache::PolicyFingerprint(full);
  const std::string fp_line = SensitivityCache::PolicyFingerprint(line);
  const std::string fp_theta = SensitivityCache::PolicyFingerprint(theta);
  EXPECT_NE(fp_full, fp_line);
  EXPECT_NE(fp_full, fp_theta);
  EXPECT_NE(fp_line, fp_theta);
  // Same policy shape -> same fingerprint.
  Policy full2 = Policy::FullDomain(domain).value();
  EXPECT_EQ(fp_full, SensitivityCache::PolicyFingerprint(full2));
  // Tags separate otherwise-identical fingerprints.
  EXPECT_NE(fp_full, SensitivityCache::PolicyFingerprint(full, "tag"));
}

}  // namespace
}  // namespace blowfish
