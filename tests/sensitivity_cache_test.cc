#include "engine/sensitivity_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "core/secret_graph.h"

namespace blowfish {
namespace {

TEST(SensitivityCacheTest, MissThenHit) {
  SensitivityCache cache(8);
  int computes = 0;
  auto compute = [&computes]() -> StatusOr<double> {
    ++computes;
    return 2.0;
  };
  auto first = cache.GetOrCompute("P", "h", compute);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(*first, 2.0);
  auto second = cache.GetOrCompute("P", "h", compute);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(*second, 2.0);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SensitivityCacheTest, DistinctKeysAreDistinctEntries) {
  SensitivityCache cache(8);
  ASSERT_TRUE(
      cache.GetOrCompute("P", "h", []() -> StatusOr<double> { return 2.0; })
          .ok());
  ASSERT_TRUE(cache
                  .GetOrCompute("P", "S_T",
                                []() -> StatusOr<double> { return 7.0; })
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompute("P2", "h",
                                []() -> StatusOr<double> { return 4.0; })
                  .ok());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_DOUBLE_EQ(*cache.GetOrCompute(
                       "P", "h", []() -> StatusOr<double> { return -1.0; }),
                   2.0);
}

TEST(SensitivityCacheTest, ErrorsAreNotCached) {
  SensitivityCache cache(8);
  int computes = 0;
  auto failing = [&computes]() -> StatusOr<double> {
    ++computes;
    return Status::ResourceExhausted("edge budget");
  };
  EXPECT_FALSE(cache.GetOrCompute("P", "h", failing).ok());
  EXPECT_FALSE(cache.GetOrCompute("P", "h", failing).ok());
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
  // A later success for the same key is cached normally.
  ASSERT_TRUE(
      cache.GetOrCompute("P", "h", []() -> StatusOr<double> { return 2.0; })
          .ok());
  EXPECT_TRUE(cache.Contains("P", "h"));
}

TEST(SensitivityCacheTest, LruEviction) {
  SensitivityCache cache(2);
  auto value = [](double v) {
    return [v]() -> StatusOr<double> { return v; };
  };
  ASSERT_TRUE(cache.GetOrCompute("P", "a", value(1)).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "b", value(2)).ok());
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_TRUE(cache.GetOrCompute("P", "a", value(-1)).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "c", value(3)).ok());
  EXPECT_TRUE(cache.Contains("P", "a"));
  EXPECT_FALSE(cache.Contains("P", "b"));
  EXPECT_TRUE(cache.Contains("P", "c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SensitivityCacheTest, ZeroCapacityAlwaysComputes) {
  SensitivityCache cache(0);
  int computes = 0;
  auto compute = [&computes]() -> StatusOr<double> {
    ++computes;
    return 2.0;
  };
  ASSERT_TRUE(cache.GetOrCompute("P", "h", compute).ok());
  ASSERT_TRUE(cache.GetOrCompute("P", "h", compute).ok());
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SensitivityCacheTest, ConcurrentAccessComputesOnce) {
  SensitivityCache cache(8);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 100; ++i) {
        auto v = cache.GetOrCompute("P", "h",
                                    [&computes]() -> StatusOr<double> {
                                      ++computes;
                                      return 2.0;
                                    });
        ASSERT_TRUE(v.ok());
        ASSERT_DOUBLE_EQ(*v, 2.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Compute runs under the cache lock: exactly one execution.
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 800u);
}

TEST(SensitivityCacheTest, SaveLoadRoundTripsEntriesAndRecency) {
  SensitivityCache cache(8);
  ASSERT_TRUE(
      cache.GetOrCompute("p1", "h", []() { return 2.0; }).ok());
  ASSERT_TRUE(
      cache.GetOrCompute("p1", "S_T", []() { return 1.0; }).ok());
  // An awkward but representative value: must round-trip bit-exactly.
  const double pi_ish = 3.141592653589793;
  ASSERT_TRUE(
      cache.GetOrCompute("p2", "h", [&]() { return pi_ish; }).ok());

  std::stringstream stream;
  ASSERT_TRUE(cache.Save(stream).ok());

  SensitivityCache restored(8);
  ASSERT_TRUE(restored.Load(stream).ok());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_TRUE(restored.Contains("p1", "h"));
  EXPECT_TRUE(restored.Contains("p1", "S_T"));
  EXPECT_TRUE(restored.Contains("p2", "h"));
  // Every lookup is a hit with the exact original value.
  int computes = 0;
  auto v = restored.GetOrCompute("p2", "h", [&]() {
    ++computes;
    return -1.0;
  });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, pi_ish);  // bit-exact, not just approximately equal
  EXPECT_EQ(computes, 0);
  EXPECT_EQ(restored.stats().hits, 1u);
}

TEST(SensitivityCacheTest, LoadPreservesLruOrderUnderEviction) {
  SensitivityCache cache(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache
                    .GetOrCompute("p", "q" + std::to_string(i),
                                  [i]() { return static_cast<double>(i); })
                    .ok());
  }
  std::stringstream stream;
  ASSERT_TRUE(cache.Save(stream).ok());

  // Restore into a cache with room for only two entries: the two most
  // recently used must survive (q2, q3), the cold ones must be evicted.
  SensitivityCache tight(2);
  ASSERT_TRUE(tight.Load(stream).ok());
  EXPECT_EQ(tight.size(), 2u);
  EXPECT_TRUE(tight.Contains("p", "q3"));
  EXPECT_TRUE(tight.Contains("p", "q2"));
  EXPECT_FALSE(tight.Contains("p", "q0"));
  EXPECT_FALSE(tight.Contains("p", "q1"));
}

TEST(SensitivityCacheTest, LoadRejectsMalformedFiles) {
  SensitivityCache cache(4);
  std::stringstream missing_header("2.0\tp\x1fh\n");
  EXPECT_EQ(cache.Load(missing_header).code(),
            StatusCode::kInvalidArgument);
  std::stringstream no_tab(
      "# blowfish-sensitivity-cache v1\njust some text\n");
  EXPECT_EQ(cache.Load(no_tab).code(), StatusCode::kInvalidArgument);
  std::stringstream bad_value(
      "# blowfish-sensitivity-cache v1\nNaNsense\tp\x1fh\n");
  EXPECT_EQ(cache.Load(bad_value).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0u);
  // inf/nan/negative sensitivities are corruption, not values: an inf
  // entry would admit and charge every matching query while releasing
  // garbage.
  for (const char* poison : {"inf", "nan", "-1"}) {
    std::stringstream bad(std::string("# blowfish-sensitivity-cache v1\n") +
                          poison + "\tp\x1fh\n");
    EXPECT_EQ(cache.Load(bad).code(), StatusCode::kInvalidArgument)
        << poison;
    EXPECT_EQ(cache.size(), 0u);
  }
  // All-or-nothing: valid lines followed by a truncated/garbage tail
  // (a crash mid-Save) must not be half-merged into the cache.
  std::stringstream truncated(
      "# blowfish-sensitivity-cache v1\n"
      "2\tp\x1fh\n"
      "1\tp\x1fS_T\n"
      "3.5");  // tail cut mid-line: value written, tab + key lost
  EXPECT_EQ(cache.Load(truncated).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains("p", "h"));
}

TEST(SensitivityCacheTest, FileRoundTripAndMissingFile) {
  SensitivityCache cache(4);
  ASSERT_TRUE(cache.GetOrCompute("p", "h", []() { return 8.0; }).ok());
  const std::string path = ::testing::TempDir() + "/blowfish_cache_test";
  ASSERT_TRUE(cache.SaveToFile(path).ok());
  SensitivityCache restored(4);
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_TRUE(restored.Contains("p", "h"));
  EXPECT_EQ(restored.LoadFromFile(path + ".does_not_exist").code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(SensitivityCacheTest, PolicyFingerprintSeparatesPolicies) {
  auto domain = std::make_shared<const Domain>(Domain::Line(16).value());
  Policy full = Policy::FullDomain(domain).value();
  Policy line = Policy::Line(domain).value();
  Policy theta = Policy::DistanceThreshold(domain, 4.0).value();
  const std::string fp_full = SensitivityCache::PolicyFingerprint(full);
  const std::string fp_line = SensitivityCache::PolicyFingerprint(line);
  const std::string fp_theta = SensitivityCache::PolicyFingerprint(theta);
  EXPECT_NE(fp_full, fp_line);
  EXPECT_NE(fp_full, fp_theta);
  EXPECT_NE(fp_line, fp_theta);
  // Same policy shape -> same fingerprint.
  Policy full2 = Policy::FullDomain(domain).value();
  EXPECT_EQ(fp_full, SensitivityCache::PolicyFingerprint(full2));
  // Tags separate otherwise-identical fingerprints.
  EXPECT_NE(fp_full, SensitivityCache::PolicyFingerprint(full, "tag"));
}

TEST(SensitivityCacheTest, ConstrainedAndUnconstrainedVariantsAreDistinct) {
  // The same query shape against the constrained and unconstrained
  // variants of one policy must occupy distinct entries — a shared
  // entry would serve the (larger) constrained bound's slot with the
  // unconstrained value, under-calibrating the noise.
  auto domain = std::make_shared<const Domain>(Domain::Line(8).value());
  auto make_policy = [&domain](ConstraintSet cs) {
    auto part = PartitionGraph::UniformGrid(domain, {2}).value();
    return Policy::Create(domain,
                          std::shared_ptr<const SecretGraph>(part.release()),
                          std::move(cs))
        .value();
  };
  Policy unconstrained = make_policy(ConstraintSet{});
  ConstraintSet one;
  one.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }),
                    1);
  Policy constrained = make_policy(std::move(one));
  // Two different constraint sets of the same size hash apart too (the
  // fingerprint covers the query names, not just the count).
  ConstraintSet other;
  other.AddWithAnswer(CountQuery("high", [](ValueIndex x) { return x >= 6; }),
                      1);
  Policy constrained_other = make_policy(std::move(other));

  const std::string fp_plain =
      SensitivityCache::PolicyFingerprint(unconstrained);
  const std::string fp_low = SensitivityCache::PolicyFingerprint(constrained);
  const std::string fp_high =
      SensitivityCache::PolicyFingerprint(constrained_other);
  EXPECT_NE(fp_plain, fp_low);
  EXPECT_NE(fp_plain, fp_high);
  EXPECT_NE(fp_low, fp_high);

  // Pinned-ness is part of the signature: the same query under the same
  // name, pinned vs unpinned, has different sensitivities (only pinned
  // queries restrict I_Q and force compensating moves), so the variants
  // must not share an entry.
  ConstraintSet unpinned_low;
  unpinned_low.Add(CountQuery("low", [](ValueIndex x) { return x < 2; }));
  Policy unpinned = make_policy(std::move(unpinned_low));
  EXPECT_NE(SensitivityCache::PolicyFingerprint(unpinned), fp_low);
  EXPECT_NE(SensitivityCache::PolicyFingerprint(unpinned), fp_plain);

  // Both variants of one shape live side by side and survive a
  // Save/Load round-trip as separate entries with their own values.
  SensitivityCache cache(8);
  ASSERT_TRUE(cache
                  .GetOrCompute(fp_plain, "h_cells[0]",
                                []() -> StatusOr<double> { return 2.0; })
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompute(fp_low, "h_cells[0]",
                                []() -> StatusOr<double> { return 4.0; })
                  .ok());
  EXPECT_EQ(cache.size(), 2u);
  std::stringstream stream;
  ASSERT_TRUE(cache.Save(stream).ok());
  SensitivityCache restored(8);
  ASSERT_TRUE(restored.Load(stream).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_DOUBLE_EQ(
      *restored.GetOrCompute(fp_plain, "h_cells[0]",
                             []() -> StatusOr<double> { return -1.0; }),
      2.0);
  EXPECT_DOUBLE_EQ(
      *restored.GetOrCompute(fp_low, "h_cells[0]",
                             []() -> StatusOr<double> { return -1.0; }),
      4.0);
}

}  // namespace
}  // namespace blowfish
