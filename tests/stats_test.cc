#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace blowfish {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
  // Unbiased sample variance of {1,2,3} is 1.
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({4.0, 4.0, 4.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolation) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);
}

TEST(StatsTest, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.5), 7.0);
}

TEST(StatsTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(StatsTest, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0.0, 0.0}, {3.0, 4.0}), 12.5);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

TEST(StatsTest, Summarize) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.lower_quartile, 2.0);
  EXPECT_DOUBLE_EQ(s.upper_quartile, 4.0);
  Summary empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace blowfish
