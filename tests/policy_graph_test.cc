#include "core/policy_graph.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/neighbors.h"
#include "core/policy.h"

namespace blowfish {
namespace {

constexpr uint64_t kMaxEdges = uint64_t{1} << 22;

std::shared_ptr<const Domain> MakeDomain223() {
  return std::make_shared<const Domain>(
      Domain::Create({Attribute{"A1", 2, 1.0}, Attribute{"A2", 2, 1.0},
                      Attribute{"A3", 3, 1.0}})
          .value());
}

// The worked example of Sec 8 (Figure 3): domain 2x2x3, constraint = the
// [A1, A2] marginal (4 count queries), full-domain secrets.
class Example8Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dom_ = MakeDomain223();
    ASSERT_TRUE(constraints_.AddMarginal(dom_, Marginal{{0, 1}}).ok());
    graph_ = std::make_shared<FullGraph>(dom_->size());
  }
  std::shared_ptr<const Domain> dom_;
  ConstraintSet constraints_;
  std::shared_ptr<FullGraph> graph_;
};

TEST_F(Example8Test, BuildSucceedsAndIsSparse) {
  EXPECT_TRUE(PolicyGraph::Build(constraints_, *graph_, kMaxEdges).ok());
}

TEST_F(Example8Test, StructureMatchesFigure3) {
  PolicyGraph pg =
      PolicyGraph::Build(constraints_, *graph_, kMaxEdges).value();
  EXPECT_EQ(pg.num_queries(), 4u);
  // Every ordered pair of distinct marginal cells is an edge (a move
  // lowers the source cell and lifts the target cell), so the query part
  // is a complete digraph; plus the mandatory (v+, v-) edge; and no other
  // edges touch v+/v-.
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(pg.HasEdge(a, b), a != b) << a << "->" << b;
    }
    EXPECT_FALSE(pg.HasEdge(pg.v_plus(), a));
    EXPECT_FALSE(pg.HasEdge(a, pg.v_minus()));
  }
  EXPECT_TRUE(pg.HasEdge(pg.v_plus(), pg.v_minus()));
}

TEST_F(Example8Test, AlphaIs4AndXiIs1) {
  PolicyGraph pg =
      PolicyGraph::Build(constraints_, *graph_, kMaxEdges).value();
  EXPECT_EQ(pg.LongestSimpleCycle().value(), 4u);       // Example 8.2
  EXPECT_EQ(pg.LongestSourceSinkPath().value(), 1u);    // just (v+, v-)
  EXPECT_DOUBLE_EQ(pg.HistogramSensitivityBound().value(), 8.0);  // Ex 8.3
}

TEST_F(Example8Test, MatchesClosedFormTheorem84) {
  EXPECT_DOUBLE_EQ(
      MarginalFullDomainSensitivity(*dom_, Marginal{{0, 1}}).value(), 8.0);
}

// Thm 8.2 equality vs the brute-force Def 5.1 oracle on a tiny domain:
// 1-D domain of 4 values, constraint = count of the lower half, full
// secrets. Policy graph: one query; moves 0/1 <-> 2/3 lower/lift it.
TEST(PolicyGraphOracleTest, SingleCountQueryMatchesBruteForce) {
  auto dom = std::make_shared<const Domain>(Domain::Line(4).value());
  ConstraintSet q;
  q.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  auto graph = std::make_shared<FullGraph>(4);
  PolicyGraph pg = PolicyGraph::Build(q, *graph, kMaxEdges).value();
  double bound = pg.HistogramSensitivityBound().value();

  Policy p = Policy::Create(dom, graph, std::move(q)).value();
  auto hist = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    return h;
  };
  double brute = BruteForceSensitivity(p, 2, 10000, hist).value();
  // A neighbour swaps one tuple to the other side and one back: 4 buckets
  // change by 1 -> S(h,P) = 4 = 2 * max{alpha=2, xi=1}.
  EXPECT_DOUBLE_EQ(brute, 4.0);
  EXPECT_DOUBLE_EQ(bound, 4.0);
}

TEST(PolicyGraphTest, NonSparseRejected) {
  ConstraintSet q;
  q.Add(CountQuery("ge5", [](ValueIndex x) { return x >= 5; }));
  q.Add(CountQuery("ge7", [](ValueIndex x) { return x >= 7; }));
  FullGraph g(10);
  auto result = PolicyGraph::Build(q, g, kMaxEdges);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PolicyGraphTest, EmptyConstraintsGiveJustVPlusVMinus) {
  ConstraintSet q;
  FullGraph g(4);
  PolicyGraph pg = PolicyGraph::Build(q, g, kMaxEdges).value();
  EXPECT_EQ(pg.num_queries(), 0u);
  EXPECT_EQ(pg.LongestSimpleCycle().value(), 0u);
  EXPECT_EQ(pg.LongestSourceSinkPath().value(), 1u);
  // Bound degenerates to 2 — the unconstrained histogram sensitivity.
  EXPECT_DOUBLE_EQ(pg.HistogramSensitivityBound().value(), 2.0);
}

TEST(PolicyGraphTest, SizeLimitEnforced) {
  // 30 disjoint point queries on a line domain of 30.
  ConstraintSet q;
  for (uint64_t v = 0; v < 30; ++v) {
    q.Add(CountQuery("pt" + std::to_string(v),
                     [v](ValueIndex x) { return x == v; }));
  }
  FullGraph g(30);
  PolicyGraph pg = PolicyGraph::Build(q, g, kMaxEdges).value();
  EXPECT_EQ(pg.LongestSimpleCycle(24).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PolicyGraphTest, CorollaryBound) {
  EXPECT_DOUBLE_EQ(HistogramSensitivityCorollaryBound(0), 2.0);
  EXPECT_DOUBLE_EQ(HistogramSensitivityCorollaryBound(5), 10.0);
}

// Corollary 8.3 dominates the exact Thm 8.2 bound whenever both apply.
TEST(PolicyGraphTest, CorollaryBoundDominatesExact) {
  auto dom = MakeDomain223();
  ConstraintSet q;
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{2}}).ok());  // 3 queries
  FullGraph g(dom->size());
  PolicyGraph pg = PolicyGraph::Build(q, g, kMaxEdges).value();
  EXPECT_LE(pg.HistogramSensitivityBound().value(),
            HistogramSensitivityCorollaryBound(q.size()));
}

// --- Thm 8.4 / 8.5 closed forms ---

TEST(MarginalSensitivityTest, Theorem84Values) {
  auto dom = MakeDomain223();
  EXPECT_DOUBLE_EQ(
      MarginalFullDomainSensitivity(*dom, Marginal{{0}}).value(), 4.0);
  EXPECT_DOUBLE_EQ(
      MarginalFullDomainSensitivity(*dom, Marginal{{2}}).value(), 6.0);
  EXPECT_DOUBLE_EQ(
      MarginalFullDomainSensitivity(*dom, Marginal{{0, 1}}).value(), 8.0);
  // [C] = all attributes pins the histogram: S = 0.
  EXPECT_DOUBLE_EQ(
      MarginalFullDomainSensitivity(*dom, Marginal{{0, 1, 2}}).value(), 0.0);
  EXPECT_FALSE(MarginalFullDomainSensitivity(*dom, Marginal{{}}).ok());
  EXPECT_FALSE(MarginalFullDomainSensitivity(*dom, Marginal{{0, 0}}).ok());
}

TEST(MarginalSensitivityTest, Theorem85DisjointMarginals) {
  auto dom = MakeDomain223();
  // C1 = [A1] (size 2), C2 = [A3] (size 3): S = 2 * max = 6.
  EXPECT_DOUBLE_EQ(DisjointMarginalsAttributeSensitivity(
                       *dom, {Marginal{{0}}, Marginal{{2}}})
                       .value(),
                   6.0);
  // Overlapping marginals rejected.
  EXPECT_FALSE(DisjointMarginalsAttributeSensitivity(
                   *dom, {Marginal{{0, 1}}, Marginal{{1}}})
                   .ok());
  EXPECT_FALSE(DisjointMarginalsAttributeSensitivity(*dom, {}).ok());
}

// Thm 8.5 vs brute force: 2x2 domain, marginals [A1] and [A2] (disjoint),
// attribute secrets.
TEST(MarginalSensitivityTest, Theorem85MatchesBruteForce) {
  auto dom = std::make_shared<const Domain>(
      Domain::Create({Attribute{"A1", 2, 1.0}, Attribute{"A2", 2, 1.0}})
          .value());
  ConstraintSet q;
  // Pin both marginals on a 2-tuple dataset: {(0,0), (1,1)}.
  Dataset d =
      Dataset::Create(dom, {dom->Encode({0, 0}), dom->Encode({1, 1})})
          .value();
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{0}}, &d).ok());
  ASSERT_TRUE(q.AddMarginal(dom, Marginal{{1}}, &d).ok());
  Policy p = Policy::Create(dom, std::make_shared<AttributeGraph>(dom),
                            std::move(q))
                 .value();
  auto hist = [](const Dataset& dd) {
    std::vector<double> h(dd.domain().size(), 0.0);
    for (ValueIndex t : dd.tuples()) h[t] += 1.0;
    return h;
  };
  double brute = BruteForceSensitivity(p, 2, 10000, hist).value();
  double closed = DisjointMarginalsAttributeSensitivity(
                      *dom, {Marginal{{0}}, Marginal{{1}}})
                      .value();
  EXPECT_DOUBLE_EQ(closed, 4.0);  // 2 * max(size) = 2 * 2
  EXPECT_DOUBLE_EQ(brute, closed);
}

// --- Thm 8.6: rectangles on a grid ---

TEST(RectangleSensitivityTest, MaxComponentUnionFind) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(20, 2).value());
  // Chain: A near B (gap 2), B near C (gap 2), D far away.
  std::vector<Rectangle> rects = {
      Rectangle{{0, 0}, {2, 2}},     // A
      Rectangle{{5, 0}, {6, 2}},     // B: d(A,B) = 3
      Rectangle{{9, 0}, {10, 2}},    // C: d(B,C) = 3
      Rectangle{{0, 15}, {2, 17}},   // D: far from all
  };
  EXPECT_EQ(MaxRectangleComponent(*dom, rects, 3.0).value(), 3u);
  EXPECT_EQ(MaxRectangleComponent(*dom, rects, 2.0).value(), 1u);
  EXPECT_EQ(MaxRectangleComponent(*dom, rects, 100.0).value(), 4u);
}

TEST(RectangleSensitivityTest, Theorem86Bound) {
  auto dom = std::make_shared<const Domain>(Domain::Grid(20, 2).value());
  std::vector<Rectangle> rects = {
      Rectangle{{0, 0}, {2, 2}},
      Rectangle{{5, 0}, {6, 2}},
  };
  // theta = 3 connects them: S = 2 (2 + 1) = 6.
  EXPECT_DOUBLE_EQ(RectangleDistanceSensitivity(*dom, rects, 3.0).value(),
                   6.0);
  // theta = 2 leaves them apart: S = 2 (1 + 1) = 4.
  EXPECT_DOUBLE_EQ(RectangleDistanceSensitivity(*dom, rects, 2.0).value(),
                   4.0);
  // Intersecting rectangles rejected.
  std::vector<Rectangle> overlapping = {Rectangle{{0, 0}, {3, 3}},
                                        Rectangle{{2, 2}, {5, 5}}};
  EXPECT_FALSE(RectangleDistanceSensitivity(*dom, overlapping, 1.0).ok());
}

// Thm 8.6 vs brute force on a small 1-D grid: two disjoint ranges with
// pinned counts, distance-threshold secrets.
TEST(RectangleSensitivityTest, Theorem86MatchesBruteForceSmall) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  // Rectangles [0,1] and [3,4]; gap = 2.
  std::vector<Rectangle> rects = {Rectangle{{0}, {1}}, Rectangle{{3}, {4}}};
  Dataset d = Dataset::Create(dom, {0, 3}).value();
  ConstraintSet q;
  ASSERT_TRUE(q.AddRectangles(dom, rects, &d).ok());
  // theta = 2 connects the rectangles (gap exactly 2).
  Policy p = Policy::Create(
                 dom,
                 std::shared_ptr<const SecretGraph>(
                     DistanceThresholdGraph::Create(dom, 2.0)
                         .value()
                         .release()),
                 std::move(q))
                 .value();
  auto hist = [](const Dataset& dd) {
    std::vector<double> h(dd.domain().size(), 0.0);
    for (ValueIndex t : dd.tuples()) h[t] += 1.0;
    return h;
  };
  double brute = BruteForceSensitivity(p, 2, 10000, hist).value();
  double bound = RectangleDistanceSensitivity(*dom, rects, 2.0).value();
  EXPECT_DOUBLE_EQ(bound, 6.0);  // 2 * (maxcomp=2 + 1)
  // The bound must dominate the exact sensitivity.
  EXPECT_LE(brute, bound);
  EXPECT_GT(brute, 0.0);
}

}  // namespace
}  // namespace blowfish
