#include "util/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace blowfish {
namespace {

TEST(HistogramTest, ConstructionAndIndexing) {
  Histogram h(5);
  EXPECT_EQ(h.size(), 5u);
  EXPECT_DOUBLE_EQ(h.Total(), 0.0);
  h.Add(2);
  h.Add(2, 3.0);
  EXPECT_DOUBLE_EQ(h[2], 4.0);
  EXPECT_DOUBLE_EQ(h.Total(), 4.0);
}

TEST(HistogramTest, FromVector) {
  Histogram h({1.0, 2.0, 3.0});
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.Total(), 6.0);
}

TEST(HistogramTest, CumulativeSums) {
  Histogram h({1.0, 0.0, 2.0, 5.0});
  std::vector<double> cum = h.CumulativeSums();
  ASSERT_EQ(cum.size(), 4u);
  EXPECT_DOUBLE_EQ(cum[0], 1.0);
  EXPECT_DOUBLE_EQ(cum[1], 1.0);
  EXPECT_DOUBLE_EQ(cum[2], 3.0);
  EXPECT_DOUBLE_EQ(cum[3], 8.0);
}

TEST(HistogramTest, RangeSum) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(h.RangeSum(0, 3).value(), 10.0);
  EXPECT_DOUBLE_EQ(h.RangeSum(1, 2).value(), 5.0);
  EXPECT_DOUBLE_EQ(h.RangeSum(2, 2).value(), 3.0);
}

TEST(HistogramTest, RangeSumErrors) {
  Histogram h({1.0, 2.0});
  EXPECT_FALSE(h.RangeSum(1, 0).ok());  // lo > hi
  EXPECT_FALSE(h.RangeSum(0, 2).ok());  // hi out of range
}

TEST(HistogramTest, L1Distance) {
  Histogram a({1.0, 2.0, 3.0});
  Histogram b({0.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(a.L1Distance(b).value(), 3.0);
  Histogram c(2);
  EXPECT_FALSE(a.L1Distance(c).ok());  // size mismatch
}

TEST(HistogramTest, NumNonZero) {
  Histogram h({0.0, 1.0, 0.0, 2.0, 0.0});
  EXPECT_EQ(h.NumNonZero(), 2u);
}

// p = number of distinct cumulative values — the sparsity parameter of
// Sec 7.1 that controls constrained-inference error.
TEST(HistogramTest, NumDistinctCumulative) {
  // counts {5,0,0,3,0}: cumulative {5,5,5,8,8} -> p = 2.
  Histogram h({5.0, 0.0, 0.0, 3.0, 0.0});
  EXPECT_EQ(h.NumDistinctCumulative(), 2u);
  Histogram g({1.0, 1.0, 1.0});
  EXPECT_EQ(g.NumDistinctCumulative(), 3u);
  EXPECT_EQ(Histogram().NumDistinctCumulative(), 0u);
}

TEST(RangeFromCumulativeTest, MatchesDirectRangeSum) {
  Histogram h({2.0, 0.0, 1.0, 4.0, 3.0});
  std::vector<double> cum = h.CumulativeSums();
  for (size_t lo = 0; lo < h.size(); ++lo) {
    for (size_t hi = lo; hi < h.size(); ++hi) {
      EXPECT_DOUBLE_EQ(RangeFromCumulative(cum, lo, hi).value(),
                       h.RangeSum(lo, hi).value())
          << "range [" << lo << ", " << hi << "]";
    }
  }
}

TEST(RangeFromCumulativeTest, Errors) {
  std::vector<double> cum = {1.0, 2.0};
  EXPECT_FALSE(RangeFromCumulative(cum, 0, 2).ok());
  EXPECT_FALSE(RangeFromCumulative(cum, 1, 0).ok());
}

}  // namespace
}  // namespace blowfish
