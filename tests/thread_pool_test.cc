#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace blowfish {
namespace {

TEST(ThreadPoolTest, SubmitDeliversResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> results;
  results.reserve(100);
  for (int i = 0; i < 100; ++i) {
    results.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  constexpr int kTasks = 5000;
  std::vector<std::future<void>> done;
  done.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    done.push_back(pool.Submit([&counter]() {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.load(), kTasks);
  // tasks_executed() is bumped after a task's future resolves, so only a
  // drained pool is guaranteed to have counted the final task.
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, ShutdownDrainsWorkInFlight) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Post([&counter]() {
        // Slow enough that most tasks are still queued when Shutdown
        // begins.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Shutdown();  // must drain every queued task, not drop them
    EXPECT_EQ(counter.load(), kTasks);
    EXPECT_EQ(pool.queue_depth(), 0u);
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  auto ran_on = pool.Submit([]() { return std::this_thread::get_id(); });
  EXPECT_EQ(ran_on.get(), caller);
}

TEST(ThreadPoolTest, ZeroThreadsIsAnInlineExecutor) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  auto ran_on = pool.Submit([]() { return std::this_thread::get_id(); });
  EXPECT_EQ(ran_on.get(), caller);
  EXPECT_EQ(pool.tasks_executed(), 1u);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter]() {
      std::vector<std::future<void>> done;
      done.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        done.push_back(pool.Submit([&counter]() {
          counter.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : done) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto result = pool.Submit([]() { return 7; });
  EXPECT_EQ(result.get(), 7);
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a crash or hang
}

}  // namespace
}  // namespace blowfish
