// Edge-case and failure-injection tests across modules: degenerate
// domains, exhausted budgets, scaled-metric edge enumeration, and
// constrained-sensitivity sweeps that tie Sec 8's bounds to the oracle
// over a parameter range rather than a single point.

#include <gtest/gtest.h>

#include <memory>

#include "core/neighbors.h"
#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/sensitivity.h"
#include "mech/laplace.h"
#include "mech/ordered.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size, double scale = 1.0) {
  return std::make_shared<const Domain>(Domain::Line(size, scale).value());
}

// --- Degenerate domains ---

TEST(EdgeCasesTest, SingleValueDomain) {
  auto dom = MakeLine(1);
  Policy p = Policy::FullDomain(dom).value();
  // No pairs to protect: sensitivity 0, exact release.
  EXPECT_DOUBLE_EQ(HistogramSensitivity(p.graph()), 0.0);
  Histogram data(1);
  data.Add(0, 7);
  Random rng(1);
  CompleteHistogramQuery q(1);
  auto out = LaplaceMechanism(q, p, data, 0.5, rng).value();
  EXPECT_DOUBLE_EQ(out[0], 7.0);
}

TEST(EdgeCasesTest, TwoValueDomainOrderedMechanism) {
  auto dom = MakeLine(2);
  Policy p = Policy::Line(dom).value();
  Histogram data(2);
  data.Add(0, 3);
  data.Add(1, 4);
  Random rng(2);
  auto out = OrderedMechanism(data, p, 1.0, rng).value();
  EXPECT_DOUBLE_EQ(out.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(out.inferred_cumulative.back(), 7.0);  // pinned total
}

TEST(EdgeCasesTest, EmptyDatasetReleases) {
  auto dom = MakeLine(8);
  Policy p = Policy::Line(dom).value();
  Histogram data(8);  // zero records
  Random rng(3);
  auto out = OrderedMechanism(data, p, 1.0, rng).value();
  // Everything clamps into [0, 0].
  for (double v : out.inferred_cumulative) EXPECT_DOUBLE_EQ(v, 0.0);
}

// --- Edge enumeration on scaled domains ---

TEST(EdgeCasesTest, ScaledThetaEdgeCount) {
  // Scale 2.5 per step; theta = 5.0 connects values up to 2 indices
  // apart: edges = (n-1) + (n-2).
  auto dom = MakeLine(10, 2.5);
  auto g = DistanceThresholdGraph::Create(dom, 5.0).value();
  size_t edges = 0;
  ASSERT_TRUE(g->ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; },
                             1 << 20)
                  .ok());
  EXPECT_EQ(edges, 9u + 8u);
}

TEST(EdgeCasesTest, ThetaBelowResolutionHasNoEdges) {
  auto dom = MakeLine(10, 2.5);
  auto g = DistanceThresholdGraph::Create(dom, 2.0).value();
  size_t edges = 0;
  ASSERT_TRUE(
      g->ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 100).ok());
  EXPECT_EQ(edges, 0u);
  // Everything is releasable exactly under this (vacuous) policy.
  EXPECT_DOUBLE_EQ(HistogramSensitivity(*g), 0.0);
}

TEST(EdgeCasesTest, EdgeBudgetPropagatesFromSparsityCheck) {
  ConstraintSet cs;
  cs.Add(CountQuery("any", [](ValueIndex) { return true; }));
  FullGraph g(1000);
  // 499500 edges >> 10 budget.
  EXPECT_EQ(cs.IsSparse(g, 10).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(PolicyGraph::Build(cs, g, 10).status().code(),
            StatusCode::kResourceExhausted);
}

// --- Sec 8 sweep: policy-graph bound vs oracle across thresholds ---

class ConstraintSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintSweepTest, BoundDominatesAndIsTightForFullGraph) {
  const uint64_t threshold = GetParam();
  auto dom = MakeLine(4);
  ConstraintSet cs;
  cs.AddWithAnswer(CountQuery("low", [threshold](ValueIndex x) {
                     return x < threshold;
                   }),
                   1);
  auto graph = std::make_shared<FullGraph>(4);
  PolicyGraph pg = PolicyGraph::Build(cs, *graph, 1 << 20).value();
  double bound = pg.HistogramSensitivityBound().value();

  Policy p = Policy::Create(dom, graph, std::move(cs)).value();
  auto hist = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    return h;
  };
  double oracle = BruteForceSensitivity(p, 2, 10000, hist).value();
  EXPECT_LE(oracle, bound + 1e-9) << "threshold " << threshold;
  EXPECT_DOUBLE_EQ(bound, 4.0);
  // Thm 8.2 gives equality only under its witness condition: a paired
  // swap must touch four *distinct* buckets, which needs at least two
  // values on each side of the constraint. With |T| = 4, threshold 2
  // splits 2/2 (tight: oracle 4); thresholds 1 and 3 leave a singleton
  // side whose swap reuses a bucket (oracle 2) — the bound is then a
  // strict upper bound, exactly as the theorem's caveat says.
  EXPECT_DOUBLE_EQ(oracle, threshold == 2 ? 4.0 : 2.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ConstraintSweepTest,
                         ::testing::Values(1, 2, 3));

// --- Policy accessors on every factory ---

TEST(EdgeCasesTest, PolicyToStringForEveryFactory) {
  auto line = MakeLine(16);
  auto grid = std::make_shared<const Domain>(Domain::Grid(4, 2).value());
  for (const Policy& p :
       {Policy::FullDomain(line).value(), Policy::Line(line).value(),
        Policy::DistanceThreshold(line, 3.0).value(),
        Policy::Attribute(grid).value(),
        Policy::GridPartition(grid, {2, 2}).value()}) {
    EXPECT_FALSE(p.ToString().empty());
    EXPECT_EQ(p.graph().num_vertices(), p.domain().size());
  }
}

// --- Dataset restricted to a graph component still round-trips ---

TEST(EdgeCasesTest, NeighborsEmptyWhenGraphEdgeless) {
  auto dom = MakeLine(3);
  auto g = ExplicitGraph::Create(3, {}).value();
  Policy p = Policy::Create(dom, std::shared_ptr<const SecretGraph>(
                                     std::move(g)))
                 .value();
  NeighborhoodResult r = EnumerateNeighbors(p, 2, 1000).value();
  // No discriminative pairs -> no neighbours: every release is "private"
  // because nothing is secret.
  EXPECT_TRUE(r.neighbor_pairs.empty());
}

}  // namespace
}  // namespace blowfish
