// Regression tests for the independent `max_pairs` knob.
//
// The all-pairs constrained move enumeration (WeightedPolicyGraph) is
// quadratic in the domain while secret-graph edge enumerations are often
// linear, so the two budgets must be separate knobs. Before the split,
// ConstrainedLinearQuerySensitivity passed `max_edges` (default 1 << 24)
// as the pair budget, so any pinned-constrained domain with more than
// 4096 values — 4097 * 4096 ordered pairs > 2^24 — failed closed with
// ResourceExhausted unless the shared budget was raised.

#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/constraints.h"
#include "core/policy.h"
#include "core/secret_graph.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "util/random.h"

namespace blowfish {
namespace {

// 4097 is the exact old failure threshold: 4096 * 4095 pairs still fit
// in the shared 1 << 24 budget, 4097 * 4096 do not.
constexpr uint64_t kOldThreshold = 4097;
constexpr uint64_t kOldSharedBudget = uint64_t{1} << 24;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

/// A pinned-constrained full-graph policy over `size` values: one count
/// query #(x == 0), answer pinned. Pinned constraints are what route
/// sensitivity through the all-pairs enumeration.
Policy PinnedPolicy(uint64_t size) {
  auto domain = LineDomain(size);
  ConstraintSet cs;
  CountQuery zero("zero", [](ValueIndex x) { return x == 0; });
  cs.AddWithAnswer(std::move(zero), 1);
  return Policy::Create(domain, std::make_shared<const FullGraph>(size),
                        std::move(cs))
      .value();
}

TEST(MaxPairsTest, OldSharedBudgetFailedClosedPastTheThreshold) {
  // Documents the bug: with the pair budget at the old shared default,
  // the first domain size past 4096 is refused before any work happens.
  Policy policy = PinnedPolicy(kOldThreshold);
  CompleteHistogramQuery h(kOldThreshold);
  auto refused = ConstrainedLinearQuerySensitivity(
      h, policy, /*max_edges=*/kOldSharedBudget,
      /*max_pairs=*/kOldSharedBudget, /*max_policy_graph_vertices=*/24);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(MaxPairsTest, DefaultPairBudgetServesPastTheOldThreshold) {
  // The fix: the default SensitivityEnv pair budget admits the same
  // domain and the enumeration completes. The one pinned singleton
  // query contributes chains of at most two moves (v+ -> q -> v- and
  // the free single move), each of histogram norm 2, so the weighted
  // Thm 8.2 bound is 4.
  Policy policy = PinnedPolicy(kOldThreshold);
  CompleteHistogramQuery h(kOldThreshold);
  const SensitivityEnv defaults;
  auto bound = ConstrainedLinearQuerySensitivity(
      h, policy, defaults.max_edges, defaults.max_pairs,
      defaults.max_policy_graph_vertices);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_DOUBLE_EQ(*bound, 4.0);
}

TEST(MaxPairsTest, PairBudgetIsIndependentOfEdgeBudget) {
  // The constrained path consumes only the pair budget: an absurdly
  // small max_edges no longer sinks it (before the split they were one
  // number). 64 values -> 64 * 63 = 4032 pairs.
  Policy policy = PinnedPolicy(64);
  CompleteHistogramQuery h(64);
  auto bound = ConstrainedLinearQuerySensitivity(
      h, policy, /*max_edges=*/1, /*max_pairs=*/4032,
      /*max_policy_graph_vertices=*/24);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_DOUBLE_EQ(*bound, 4.0);

  // ...and the pair budget still guards: one pair short is refused.
  auto refused = ConstrainedLinearQuerySensitivity(
      h, policy, /*max_edges=*/kOldSharedBudget, /*max_pairs=*/4031,
      /*max_policy_graph_vertices=*/24);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(MaxPairsTest, EngineServesAPinnedConstrainedDomainPastTheThreshold) {
  // End to end through the engine defaults: a `histogram` query against
  // a pinned-constrained domain one value past the old threshold is
  // admitted and released (it used to refuse with ResourceExhausted).
  Policy policy = PinnedPolicy(kOldThreshold);
  std::vector<ValueIndex> tuples{0, 1, 2, 3, 4};
  Dataset data =
      Dataset::Create(policy.domain_ptr(), std::move(tuples)).value();
  auto engine = ReleaseEngine::Create(policy, std::move(data), {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto request = MakeQueryRequest("histogram", 0.5);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  auto responses = (*engine)->ServeBatch({*request});
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status.ToString();
  EXPECT_DOUBLE_EQ(responses[0].sensitivity, 4.0);
  EXPECT_EQ(responses[0].values.size(), kOldThreshold);
}

}  // namespace
}  // namespace blowfish
