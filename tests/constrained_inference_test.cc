#include "mech/constrained_inference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"
#include "util/stats.h"

namespace blowfish {
namespace {

// --- Isotonic regression (PAVA) ---

TEST(IsotonicTest, AlreadyMonotoneIsFixedPoint) {
  std::vector<double> ys = {1.0, 2.0, 2.0, 5.0};
  EXPECT_EQ(IsotonicRegression(ys).value(), ys);
}

TEST(IsotonicTest, SimpleViolationPools) {
  // {3, 1} -> both become the mean 2.
  auto out = IsotonicRegression({3.0, 1.0}).value();
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(IsotonicTest, CascadingPools) {
  // {4, 3, 2, 1} -> all pool to 2.5.
  auto out = IsotonicRegression({4.0, 3.0, 2.0, 1.0}).value();
  for (double v : out) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(IsotonicTest, OutputIsMonotone) {
  Random rng(5);
  std::vector<double> ys(200);
  for (double& y : ys) y = rng.Uniform(-10, 10);
  auto out = IsotonicRegression(ys).value();
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i] + 1e-12, out[i - 1]);
  }
}

// The LS isotonic fit preserves the (weighted) total.
TEST(IsotonicTest, PreservesMean) {
  Random rng(6);
  std::vector<double> ys(100);
  for (double& y : ys) y = rng.Uniform(0, 5);
  auto out = IsotonicRegression(ys).value();
  EXPECT_NEAR(Mean(out), Mean(ys), 1e-9);
}

// Projection property: isotonizing an isotonic output is a no-op.
TEST(IsotonicTest, Idempotent) {
  Random rng(7);
  std::vector<double> ys(100);
  for (double& y : ys) y = rng.Uniform(-3, 3);
  auto once = IsotonicRegression(ys).value();
  auto twice = IsotonicRegression(once).value();
  for (size_t i = 0; i < ys.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-12);
  }
}

TEST(IsotonicTest, WeightsRespected) {
  // Heavy first point {0 w=100, -1 w=1}: pooled mean ~ -0.0099, dominated
  // by the heavy point.
  auto out = IsotonicRegression({0.0, -1.0}, {100.0, 1.0}).value();
  EXPECT_NEAR(out[0], -1.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[0], out[1]);
}

TEST(IsotonicTest, WeightValidation) {
  EXPECT_FALSE(IsotonicRegression({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(IsotonicRegression({1.0, 2.0}, {1.0, 0.0}).ok());
  EXPECT_FALSE(IsotonicRegression({1.0, 2.0}, {1.0, -2.0}).ok());
}

// Isotonic regression reduces (never increases) L2 error against any
// monotone ground truth — the mechanism-accuracy property of Sec 7.1.
TEST(IsotonicTest, ReducesErrorAgainstMonotoneTruth) {
  Random rng(11);
  std::vector<double> truth(300);
  double run = 0.0;
  for (double& t : truth) {
    run += rng.Uniform(0.0, 1.0);
    t = run;
  }
  std::vector<double> noisy(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    noisy[i] = truth[i] + rng.Laplace(3.0);
  }
  auto fitted = IsotonicRegression(noisy).value();
  EXPECT_LE(MeanSquaredError(truth, fitted), MeanSquaredError(truth, noisy));
}

// --- ClampCumulative ---

TEST(ClampCumulativeTest, PinsTotalAndClamps) {
  auto out = ClampCumulative({-2.0, 3.0, 12.0, 7.0}, 10.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.back(), 10.0);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0);
    EXPECT_LE(out[i], 10.0);
  }
  for (size_t i = 1; i < out.size(); ++i) EXPECT_GE(out[i], out[i - 1]);
}

TEST(ClampCumulativeTest, EmptyInput) {
  EXPECT_TRUE(ClampCumulative({}, 5.0).empty());
}

// --- IntervalTree ---

TEST(IntervalTreeTest, BuildValidation) {
  EXPECT_FALSE(IntervalTree::Build(0, 2).ok());
  EXPECT_FALSE(IntervalTree::Build(8, 1).ok());
  EXPECT_TRUE(IntervalTree::Build(8, 2).ok());
}

TEST(IntervalTreeTest, ShapeCompleteBinary) {
  IntervalTree t = IntervalTree::Build(8, 2).value();
  EXPECT_EQ(t.height(), 3u);
  ASSERT_EQ(t.levels.size(), 4u);
  EXPECT_EQ(t.levels[0].size(), 1u);
  EXPECT_EQ(t.levels[1].size(), 2u);
  EXPECT_EQ(t.levels[2].size(), 4u);
  EXPECT_EQ(t.levels[3].size(), 8u);
}

TEST(IntervalTreeTest, ShapeRagged) {
  IntervalTree t = IntervalTree::Build(10, 4).value();
  EXPECT_EQ(t.height(), 2u);  // 4^2 = 16 >= 10
  EXPECT_EQ(t.levels[0].size(), 1u);
  EXPECT_EQ(t.levels[1].size(), 3u);  // ceil(10/4)
  EXPECT_EQ(t.levels[2].size(), 10u);
}

TEST(IntervalTreeTest, NodeRange) {
  IntervalTree t = IntervalTree::Build(10, 4).value();
  EXPECT_EQ(t.NodeRange(0, 0), (std::pair<size_t, size_t>{0, 10}));
  EXPECT_EQ(t.NodeRange(1, 1), (std::pair<size_t, size_t>{4, 8}));
  EXPECT_EQ(t.NodeRange(1, 2), (std::pair<size_t, size_t>{8, 10}));
  EXPECT_EQ(t.NodeRange(2, 9), (std::pair<size_t, size_t>{9, 10}));
}

TEST(IntervalTreeTest, PopulateComputesIntervalSums) {
  IntervalTree t = IntervalTree::Build(5, 2).value();
  t.PopulateFromLeaves({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(t.levels[0][0], 15.0);
  for (size_t l = 0; l <= t.height(); ++l) {
    for (size_t i = 0; i < t.levels[l].size(); ++i) {
      auto [lo, hi] = t.NodeRange(l, i);
      double expected = 0.0;
      for (size_t j = lo; j < hi; ++j) expected += 1.0 + j;
      EXPECT_DOUBLE_EQ(t.levels[l][i], expected) << "level " << l << " node "
                                                 << i;
    }
  }
}

class PrefixSumTest : public ::testing::TestWithParam<
                          std::tuple<size_t /*leaves*/, size_t /*fanout*/>> {
};

TEST_P(PrefixSumTest, MatchesDirectSum) {
  auto [leaves, fanout] = GetParam();
  IntervalTree t = IntervalTree::Build(leaves, fanout).value();
  Random rng(13);
  std::vector<double> vals(leaves);
  for (double& v : vals) v = rng.Uniform(0, 9);
  t.PopulateFromLeaves(vals);
  double run = 0.0;
  EXPECT_DOUBLE_EQ(t.PrefixSum(0), 0.0);
  for (size_t len = 1; len <= leaves; ++len) {
    run += vals[len - 1];
    EXPECT_NEAR(t.PrefixSum(len), run, 1e-9) << "len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrefixSumTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(7, 2),
                      std::make_tuple(8, 2), std::make_tuple(9, 2),
                      std::make_tuple(16, 4), std::make_tuple(100, 16),
                      std::make_tuple(4357, 16)));

// --- Tree consistency ---

TEST(TreeConsistencyTest, ConsistentTreeIsFixedPoint) {
  IntervalTree t = IntervalTree::Build(8, 2).value();
  t.PopulateFromLeaves({1, 2, 3, 4, 5, 6, 7, 8});
  IntervalTree out = TreeConsistency(t);
  for (size_t l = 0; l < t.levels.size(); ++l) {
    for (size_t i = 0; i < t.levels[l].size(); ++i) {
      EXPECT_NEAR(out.levels[l][i], t.levels[l][i], 1e-9);
    }
  }
}

TEST(TreeConsistencyTest, OutputIsInternallyConsistent) {
  IntervalTree t = IntervalTree::Build(27, 3).value();
  std::vector<double> leaves(27);
  Random rng(17);
  for (double& v : leaves) v = rng.Uniform(0, 10);
  t.PopulateFromLeaves(leaves);
  // Perturb every node independently.
  for (auto& level : t.levels) {
    for (double& v : level) v += rng.Laplace(2.0);
  }
  IntervalTree out = TreeConsistency(t);
  for (size_t l = 0; l + 1 < out.levels.size(); ++l) {
    for (size_t i = 0; i < out.levels[l].size(); ++i) {
      size_t lo = i * out.fanout;
      size_t hi = std::min(lo + out.fanout, out.levels[l + 1].size());
      double child_sum = 0.0;
      for (size_t c = lo; c < hi; ++c) child_sum += out.levels[l + 1][c];
      EXPECT_NEAR(out.levels[l][i], child_sum, 1e-6)
          << "level " << l << " node " << i;
    }
  }
}

TEST(TreeConsistencyTest, ReducesLeafError) {
  IntervalTree t = IntervalTree::Build(64, 4).value();
  Random rng(23);
  std::vector<double> leaves(64);
  for (double& v : leaves) v = rng.Uniform(0, 20);
  t.PopulateFromLeaves(leaves);
  IntervalTree noisy = t;
  for (auto& level : noisy.levels) {
    for (double& v : level) v += rng.Laplace(3.0);
  }
  IntervalTree inferred = TreeConsistency(noisy);
  double mse_noisy = MeanSquaredError(t.levels.back(), noisy.levels.back());
  double mse_inferred =
      MeanSquaredError(t.levels.back(), inferred.levels.back());
  EXPECT_LT(mse_inferred, mse_noisy);
}

}  // namespace
}  // namespace blowfish
