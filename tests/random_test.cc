#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.h"

namespace blowfish {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Random rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// Laplace(b) has mean 0 and variance 2 b^2; check both empirically.
TEST(RandomTest, LaplaceMoments) {
  Random rng(123);
  const double scale = 2.5;
  const size_t n = 200000;
  std::vector<double> draws(n);
  for (size_t i = 0; i < n; ++i) draws[i] = rng.Laplace(scale);
  EXPECT_NEAR(Mean(draws), 0.0, 0.05);
  EXPECT_NEAR(Variance(draws), 2.0 * scale * scale, 0.3);
}

// P(|Z| > t) = exp(-t/b) for Laplace; at t = b ln 2 the tail mass is 1/2.
TEST(RandomTest, LaplaceTailProbability) {
  Random rng(9);
  const double t = std::log(2.0);
  size_t beyond = 0;
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(rng.Laplace(1.0)) > t) ++beyond;
  }
  EXPECT_NEAR(static_cast<double>(beyond) / n, 0.5, 0.01);
}

TEST(RandomTest, LaplaceSymmetry) {
  Random rng(31);
  size_t positive = 0;
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Laplace(3.0) > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.01);
}

TEST(RandomTest, LaplaceVectorSizeAndIndependence) {
  Random rng(11);
  std::vector<double> v = rng.LaplaceVector(1000, 1.0);
  ASSERT_EQ(v.size(), 1000u);
  // Lag-1 sample autocorrelation should be near zero.
  double mean = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i + 1 < v.size(); ++i) {
    num += (v[i] - mean) * (v[i + 1] - mean);
  }
  for (size_t i = 0; i < v.size(); ++i) {
    den += (v[i] - mean) * (v[i] - mean);
  }
  EXPECT_LT(std::fabs(num / den), 0.1);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(77);
  const size_t n = 100000;
  std::vector<double> draws(n);
  for (size_t i = 0; i < n; ++i) draws[i] = rng.Gaussian(5.0, 3.0);
  EXPECT_NEAR(Mean(draws), 5.0, 0.05);
  EXPECT_NEAR(Variance(draws), 9.0, 0.2);
}

TEST(RandomTest, ForkProducesDistinctStream) {
  Random a(42);
  Random fork = a.Fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (fork.Uniform() == a.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, StreamForkIsReproducible) {
  Random a(42), b(42);
  // Draw from `a` first: stream forks must not depend on generator state.
  for (int i = 0; i < 17; ++i) a.Uniform();
  Random fa = a.Fork(uint64_t{5});
  Random fb = b.Fork(uint64_t{5});
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
  }
}

TEST(RandomTest, StreamForksDiffer) {
  Random root(42);
  Random s0 = root.Fork(uint64_t{0});
  Random s1 = root.Fork(uint64_t{1});
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.Uniform() == s1.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, StreamForkDiffersFromRootStream) {
  // Fork(id) must not just reuse the root seed: stream 0 of seed 42 and a
  // fresh Random(42) should be unrelated sequences.
  Random root(42);
  Random s0 = root.Fork(uint64_t{0});
  Random raw(42);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.Uniform() == raw.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace blowfish
