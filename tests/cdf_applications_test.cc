#include "mech/cdf_applications.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.h"
#include "mech/ordered.h"
#include "util/random.h"

namespace blowfish {
namespace {

TEST(QuantileTest, ExactQuantilesOfStepCdf) {
  // 10 records at index 2, 10 at index 7 (|T| = 10).
  std::vector<double> cum = {0, 0, 10, 10, 10, 10, 10, 20, 20, 20};
  EXPECT_EQ(QuantileFromCumulative(cum, 0.0).value(), 0u);
  EXPECT_EQ(QuantileFromCumulative(cum, 0.25).value(), 2u);
  EXPECT_EQ(QuantileFromCumulative(cum, 0.5).value(), 2u);
  EXPECT_EQ(QuantileFromCumulative(cum, 0.75).value(), 7u);
  EXPECT_EQ(QuantileFromCumulative(cum, 1.0).value(), 7u);
}

TEST(QuantileTest, Validation) {
  EXPECT_FALSE(QuantileFromCumulative({}, 0.5).ok());
  EXPECT_FALSE(QuantileFromCumulative({1, 2}, -0.1).ok());
  EXPECT_FALSE(QuantileFromCumulative({1, 2}, 1.1).ok());
  // Non-monotone input rejected.
  EXPECT_EQ(QuantileFromCumulative({5, 3}, 0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EquiDepthTest, UniformDataSplitsEvenly) {
  // Uniform counts of 1 over 100 values.
  std::vector<double> cum(100);
  for (size_t i = 0; i < 100; ++i) cum[i] = static_cast<double>(i + 1);
  auto bounds = EquiDepthBoundaries(cum, 4).value();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 24u);
  EXPECT_EQ(bounds[1], 49u);
  EXPECT_EQ(bounds[2], 74u);
  EXPECT_FALSE(EquiDepthBoundaries(cum, 0).ok());
}

TEST(EquiDepthTest, BoundariesMonotone) {
  std::vector<double> cum = {0, 5, 5, 5, 30, 31, 31, 60};
  auto bounds = EquiDepthBoundaries(cum, 6).value();
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GE(bounds[i], bounds[i - 1]);
  }
}

TEST(CdfTest, NormalizesAndClamps) {
  std::vector<double> cum = {2, 4, 8};
  auto cdf = CdfFromCumulative(cum).value();
  EXPECT_DOUBLE_EQ(cdf[0], 0.25);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_FALSE(CdfFromCumulative({0, 0}).ok());  // zero total
}

TEST(CdfIndexTest, BuildAndSplits) {
  std::vector<double> cum(64);
  for (size_t i = 0; i < 64; ++i) cum[i] = static_cast<double>(i + 1);
  CdfIndex index = CdfIndex::Build(cum, 2).value();
  ASSERT_EQ(index.splits().size(), 3u);  // 2^2 - 1
  EXPECT_EQ(index.splits()[1], 31u);     // median
  EXPECT_FALSE(CdfIndex::Build(cum, 0).ok());
  EXPECT_FALSE(CdfIndex::Build(cum, 31).ok());
}

TEST(CdfIndexTest, RankAndRangeCount) {
  std::vector<double> cum = {1, 3, 6, 10};
  CdfIndex index = CdfIndex::Build(cum, 1).value();
  EXPECT_DOUBLE_EQ(index.Rank(2).value(), 6.0);
  EXPECT_DOUBLE_EQ(index.RangeCount(1, 2).value(), 5.0);
  EXPECT_FALSE(index.Rank(4).ok());
  EXPECT_FALSE(index.RangeCount(2, 1).ok());
}

TEST(CdfIndexTest, LeafOfPartitionsDomain) {
  std::vector<double> cum(16);
  for (size_t i = 0; i < 16; ++i) cum[i] = static_cast<double>(i + 1);
  CdfIndex index = CdfIndex::Build(cum, 2).value();
  // Leaves must be non-decreasing over the domain and span [0, 3].
  size_t prev = 0;
  for (size_t x = 0; x < 16; ++x) {
    size_t leaf = index.LeafOf(x).value();
    EXPECT_GE(leaf, prev);
    EXPECT_LT(leaf, 4u);
    prev = leaf;
  }
}

// End-to-end: noisy quantiles from an Ordered-Mechanism release land
// near the true quantiles.
TEST(CdfApplicationsIntegrationTest, NoisyQuantilesAreClose) {
  auto dom = std::make_shared<const Domain>(Domain::Line(500).value());
  Histogram data(500);
  Random drng(9);
  for (int i = 0; i < 20000; ++i) {
    data.Add(static_cast<size_t>(drng.UniformInt(100, 399)));
  }
  Policy line = Policy::Line(dom).value();
  Random rng(10);
  auto released = OrderedMechanism(data, line, 0.5, rng).value();
  std::vector<double> truth = data.CumulativeSums();
  for (double q : {0.1, 0.5, 0.9}) {
    size_t noisy =
        QuantileFromCumulative(released.inferred_cumulative, q).value();
    size_t exact = QuantileFromCumulative(truth, q).value();
    EXPECT_NEAR(static_cast<double>(noisy), static_cast<double>(exact),
                5.0)
        << "quantile " << q;
  }
}

}  // namespace
}  // namespace blowfish
