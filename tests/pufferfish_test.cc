// Numeric check of Theorem 4.4: a mechanism satisfies
// (eps, S_pairs, D)-Pufferfish privacy with D the *product* distributions
// over tuples iff it satisfies (eps, P)-Blowfish privacy for the policy
// with the same discriminative pairs and no constraints.
//
// We verify the nontrivial direction on a tiny instance: for the
// Blowfish-calibrated Laplace mechanism on a scalar linear query, and for
// randomly drawn product priors, the posterior output densities
// conditioned on the two halves of any discriminative pair stay within
// e^eps of each other at every output point:
//
//   P(M(D) = w | t_i = x)  <=  e^eps  P(M(D) = w | t_i = y)
//
// where the conditional marginalizes the other tuples over their priors.
// (The converse direction — point-mass priors recover the neighbouring-
// dataset inequality — is exercised by privacy_property_test.cc.)

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/policy.h"
#include "core/sensitivity.h"
#include "util/random.h"

namespace blowfish {
namespace {

double LaplaceDensity(double x, double mean, double scale) {
  return std::exp(-std::fabs(x - mean) / scale) / (2.0 * scale);
}

class PufferfishEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PufferfishEquivalenceTest, ProductPriorPosteriorRatioBounded) {
  // Domain {0, 1, 2}; two tuples; scalar query f(D) = sum of values.
  auto dom = std::make_shared<const Domain>(Domain::Line(3).value());
  std::string kind = GetParam();
  Policy policy = kind == "full" ? Policy::FullDomain(dom).value()
                                 : Policy::Line(dom).value();
  const double eps = 0.8;
  ValueWeightedSumQuery query(
      [](ValueIndex v) { return static_cast<double>(v); });
  double sens =
      UnconstrainedSensitivity(query, policy.graph(), 1000).value();
  ASSERT_GT(sens, 0.0);
  const double scale = sens / eps;

  Random rng(13);
  const size_t n = 2;
  // Try several random product priors over the two tuples.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<double>> prior(n, std::vector<double>(3));
    for (auto& p : prior) {
      double total = 0.0;
      for (double& v : p) {
        v = rng.Uniform(0.05, 1.0);  // bounded away from zero
        total += v;
      }
      for (double& v : p) v /= total;
    }
    // For each discriminative pair (x, y) about tuple i = 0, compare the
    // output densities marginalized over tuple 1's prior.
    for (ValueIndex x = 0; x < 3; ++x) {
      for (ValueIndex y = 0; y < 3; ++y) {
        if (!policy.graph().Adjacent(x, y)) continue;
        for (double w = -8.0; w <= 14.0; w += 0.25) {
          double dx = 0.0, dy = 0.0;
          for (ValueIndex v = 0; v < 3; ++v) {
            double fx = static_cast<double>(x + v);
            double fy = static_cast<double>(y + v);
            dx += prior[1][v] * LaplaceDensity(w, fx, scale);
            dy += prior[1][v] * LaplaceDensity(w, fy, scale);
          }
          EXPECT_LE(dx, std::exp(eps) * dy * (1.0 + 1e-9))
              << kind << " pair (" << x << "," << y << ") at w=" << w;
          EXPECT_LE(dy, std::exp(eps) * dx * (1.0 + 1e-9));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PufferfishEquivalenceTest,
                         ::testing::Values("full", "line"));

// Under the line policy, *non-adjacent* pairs (0, 2) are only protected
// at e^{2 eps} (Eqn 9: the graph distance scales the guarantee). Verify
// the gap is real: the ratio exceeds e^eps somewhere but stays within
// e^{2 eps}.
TEST(PufferfishEquivalenceTest, NonAdjacentPairsDegradeWithDistance) {
  auto dom = std::make_shared<const Domain>(Domain::Line(3).value());
  Policy policy = Policy::Line(dom).value();
  const double eps = 0.8;
  ValueWeightedSumQuery query(
      [](ValueIndex v) { return static_cast<double>(v); });
  double sens =
      UnconstrainedSensitivity(query, policy.graph(), 1000).value();
  const double scale = sens / eps;
  // Single tuple (n = 1) for a clean density comparison of values 0 vs 2.
  double worst = 0.0;
  for (double w = -10.0; w <= 12.0; w += 0.05) {
    double d0 = LaplaceDensity(w, 0.0, scale);
    double d2 = LaplaceDensity(w, 2.0, scale);
    worst = std::max(worst, d0 / d2);
  }
  EXPECT_GT(worst, std::exp(eps));            // weaker than adjacent pairs
  EXPECT_LE(worst, std::exp(2.0 * eps) * (1.0 + 1e-6));  // Eqn 9 bound
}

}  // namespace
}  // namespace blowfish
