// Tests for the obs span tracer (src/obs/trace.h): JSON shape and
// escaping of TraceEvent, and the TraceWriter's disabled-by-default /
// concurrent-append contract (the concurrency case runs under TSan via
// the "obs" ctest label).

#include "obs/trace.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace blowfish {
namespace obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

TEST(TraceEventTest, BuildsFlatJson) {
  TraceEvent event("query");
  event.Str("kind", "histogram")
      .Int("index", -3)
      .Uint("charge_id", 7)
      .Double("eps", 0.25)
      .Bool("cache_hit", true);
  EXPECT_EQ(std::move(event).Finish(),
            "{\"span\":\"query\",\"kind\":\"histogram\",\"index\":-3,"
            "\"charge_id\":7,\"eps\":0.25,\"cache_hit\":true}");
}

TEST(TraceEventTest, EscapesStrings) {
  TraceEvent event("q");
  event.Str("label", "a\"b\\c\nd\te\x01");
  EXPECT_EQ(std::move(event).Finish(),
            "{\"span\":\"q\",\"label\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(TraceEventTest, DoubleRoundTripsBitExactly) {
  const double eps = 0.1;  // not binary-exact; %.17g must round-trip it
  TraceEvent event("q");
  event.Double("eps", eps);
  const std::string json = std::move(event).Finish();
  const size_t colon = json.rfind(':');
  const std::string text =
      json.substr(colon + 1, json.size() - colon - 2);
  EXPECT_EQ(std::stod(text), eps);
}

TEST(TraceWriterTest, DisabledByDefaultAndWriteIsNoOp) {
  TraceWriter writer;
  EXPECT_FALSE(writer.enabled());
  writer.Write(TraceEvent("q"));  // must not crash
}

TEST(TraceWriterTest, OpenFailsOnBadPath) {
  TraceWriter writer;
  EXPECT_FALSE(writer.Open("/nonexistent-dir-xyz/trace.jsonl"));
  EXPECT_FALSE(writer.enabled());
}

TEST(TraceWriterTest, WritesOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path));
  EXPECT_TRUE(writer.enabled());
  {
    TraceEvent event("batch");
    event.Uint("queries", 4);
    writer.Write(std::move(event));
  }
  {
    TraceEvent event("query");
    event.Str("kind", "mean");
    writer.Write(std::move(event));
  }
  writer.Close();
  EXPECT_FALSE(writer.enabled());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"span\":\"batch\",\"queries\":4}");
  EXPECT_EQ(lines[1], "{\"span\":\"query\",\"kind\":\"mean\"}");
}

TEST(TraceWriterTest, CloseIsIdempotentAndWriteAfterCloseIsNoOp) {
  const std::string path = ::testing::TempDir() + "/trace_test2.jsonl";
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path));
  writer.Close();
  writer.Close();
  writer.Write(TraceEvent("q"));
  EXPECT_TRUE(ReadLines(path).empty());
}

TEST(TraceWriterTest, ConcurrentWritesYieldWholeLines) {
  const std::string path =
      ::testing::TempDir() + "/trace_test_concurrent.jsonl";
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent event("query");
        event.Int("thread", t).Int("i", i);
        writer.Write(std::move(event));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  writer.Close();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // The mutex serializes appends: every line is a complete object, never
  // an interleaving of two writers.
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find("{\"span\":\"query\",\"thread\":"), 0u);
  }
}

TEST(TraceWriterTest, GlobalIsStableAndStartsDisabled) {
  EXPECT_EQ(TraceWriter::Global(), TraceWriter::Global());
  EXPECT_FALSE(TraceWriter::Global()->enabled());
}

}  // namespace
}  // namespace obs
}  // namespace blowfish
