#include "mech/ordered.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Histogram SparseHistogram() {
  // counts over |T| = 16 with few distinct cumulative values.
  Histogram h(16);
  h.Add(2, 40);
  h.Add(9, 25);
  h.Add(15, 5);
  return h;
}

TEST(OrderedMechanismTest, SensitivityPickedFromPolicy) {
  auto dom = MakeLine(16);
  Random rng(1);
  Histogram data = SparseHistogram();
  auto line = OrderedMechanism(data, Policy::Line(dom).value(), 1.0, rng);
  ASSERT_TRUE(line.ok());
  EXPECT_DOUBLE_EQ(line->sensitivity, 1.0);
  auto theta =
      OrderedMechanism(data, Policy::DistanceThreshold(dom, 4.0).value(),
                       1.0, rng);
  ASSERT_TRUE(theta.ok());
  EXPECT_DOUBLE_EQ(theta->sensitivity, 4.0);
  auto full =
      OrderedMechanism(data, Policy::FullDomain(dom).value(), 1.0, rng);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full->sensitivity, 15.0);
}

TEST(OrderedMechanismTest, InferredIsMonotoneClampedAndPinned) {
  auto dom = MakeLine(16);
  Random rng(2);
  Histogram data = SparseHistogram();
  const double n = data.Total();
  auto out =
      OrderedMechanism(data, Policy::Line(dom).value(), 0.1, rng).value();
  ASSERT_EQ(out.inferred_cumulative.size(), 16u);
  EXPECT_DOUBLE_EQ(out.inferred_cumulative.back(), n);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_GE(out.inferred_cumulative[i], 0.0);
    EXPECT_LE(out.inferred_cumulative[i], n);
    if (i > 0) {
      EXPECT_GE(out.inferred_cumulative[i],
                out.inferred_cumulative[i - 1] - 1e-9);
    }
  }
}

TEST(OrderedMechanismTest, SizeMismatchRejected) {
  auto dom = MakeLine(16);
  Random rng(3);
  Histogram wrong(8);
  EXPECT_FALSE(
      OrderedMechanism(wrong, Policy::Line(dom).value(), 1.0, rng).ok());
}

TEST(OrderedMechanismTest, ConstrainedPolicyRejected) {
  auto dom = MakeLine(8);
  ConstraintSet cs;
  cs.Add(CountQuery("low", [](ValueIndex x) { return x < 4; }));
  Policy p = Policy::Create(dom, std::make_shared<LineGraph>(8),
                            std::move(cs))
                 .value();
  Random rng(3);
  Histogram data(8);
  EXPECT_EQ(OrderedMechanism(data, p, 1.0, rng).status().code(),
            StatusCode::kUnimplemented);
}

// Thm 7.1: per-range-query MSE under the line graph is <= 4/eps^2 —
// independent of |T|. Verify empirically at |T| = 512.
TEST(OrderedMechanismTest, RangeErrorBoundHolds) {
  auto dom = MakeLine(512);
  Policy p = Policy::Line(dom).value();
  Histogram data(512);
  Random seed_rng(5);
  for (int i = 0; i < 2000; ++i) {
    data.Add(static_cast<size_t>(seed_rng.UniformInt(0, 511)));
  }
  const double eps = 0.5;
  Random rng(7);
  std::vector<double> sq_errors;
  for (int rep = 0; rep < 300; ++rep) {
    // Raw noisy counts (no inference) witness the analytic bound exactly;
    // inference only helps.
    auto out = OrderedMechanism(data, p, eps, rng, false).value();
    double truth = data.RangeSum(100, 399).value();
    double est =
        RangeFromCumulative(out.inferred_cumulative, 100, 399).value();
    sq_errors.push_back((est - truth) * (est - truth));
  }
  // Mean within ~1.6x of the bound accounting for sampling noise; the
  // bound itself is 4/eps^2 = 16.
  EXPECT_LT(Mean(sq_errors), 1.6 * OrderedMechanismRangeErrorBound(eps));
}

// Constrained inference helps on sparse data (p << |T|), the headline
// claim of Sec 7.1.
TEST(OrderedMechanismTest, InferenceReducesErrorOnSparseData) {
  auto dom = MakeLine(256);
  Policy p = Policy::Line(dom).value();
  Histogram data(256);
  data.Add(10, 500);
  data.Add(200, 300);  // p = 3 distinct cumulative values
  Random rng(11);
  double mse_raw = 0.0, mse_inferred = 0.0;
  std::vector<double> truth = data.CumulativeSums();
  const int reps = 150;
  for (int rep = 0; rep < reps; ++rep) {
    auto raw = OrderedMechanism(data, p, 0.2, rng, false).value();
    auto inf = OrderedMechanism(data, p, 0.2, rng, true).value();
    mse_raw += MeanSquaredError(truth, raw.inferred_cumulative);
    mse_inferred += MeanSquaredError(truth, inf.inferred_cumulative);
  }
  EXPECT_LT(mse_inferred, mse_raw * 0.6);
}

TEST(OrderedMechanismTest, ErrorBoundFormula) {
  EXPECT_DOUBLE_EQ(OrderedMechanismRangeErrorBound(1.0), 4.0);
  EXPECT_DOUBLE_EQ(OrderedMechanismRangeErrorBound(0.5), 16.0);
}

}  // namespace
}  // namespace blowfish
