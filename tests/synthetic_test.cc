#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace blowfish {
namespace {

TEST(TwitterLikeTest, DomainShapeMatchesPaper) {
  Random rng(1);
  Dataset d = GenerateTwitterLike(5000, rng).value();
  EXPECT_EQ(d.size(), 5000u);
  EXPECT_EQ(d.domain().num_attributes(), 2u);
  EXPECT_EQ(d.domain().attribute(0).cardinality, 400u);
  EXPECT_EQ(d.domain().attribute(1).cardinality, 300u);
  EXPECT_NEAR(d.domain().attribute(0).scale, 5.55, 1e-9);
}

TEST(TwitterLikeTest, IsSpatiallySkewed) {
  Random rng(2);
  Dataset d = GenerateTwitterLike(20000, rng).value();
  // Hot-spot mixture: the busiest 1% of occupied cells should hold far
  // more than 1% of the points.
  std::map<ValueIndex, size_t> counts;
  for (ValueIndex t : d.tuples()) ++counts[t];
  std::vector<size_t> occupancy;
  for (const auto& [v, c] : counts) occupancy.push_back(c);
  std::sort(occupancy.rbegin(), occupancy.rend());
  size_t top = 0, total = 0;
  for (size_t i = 0; i < occupancy.size(); ++i) {
    if (i < occupancy.size() / 100 + 1) top += occupancy[i];
    total += occupancy[i];
  }
  EXPECT_GT(static_cast<double>(top) / total, 0.05);
}

TEST(TwitterLatitudeLikeTest, ProjectsTo1D) {
  Random rng(3);
  Dataset d = GenerateTwitterLatitudeLike(3000, rng).value();
  EXPECT_EQ(d.domain().num_attributes(), 1u);
  EXPECT_EQ(d.domain().size(), 400u);
  EXPECT_EQ(d.size(), 3000u);
}

TEST(SkinLikeTest, DomainIs256Cubed) {
  Random rng(4);
  Dataset d = GenerateSkinLike(10000, rng).value();
  EXPECT_EQ(d.size(), 10000u);
  EXPECT_EQ(d.domain().num_attributes(), 3u);
  EXPECT_EQ(d.domain().size(), 256u * 256 * 256);
}

TEST(SkinLikeTest, SkinClusterHasHighRed) {
  Random rng(5);
  Dataset d = GenerateSkinLike(20000, rng).value();
  // The R (attr 2) marginal mean should exceed the B (attr 0) mean because
  // ~21% of points sit in the red-heavy skin cluster.
  double mean_b = 0.0, mean_r = 0.0;
  for (ValueIndex t : d.tuples()) {
    mean_b += static_cast<double>(d.domain().Coordinate(t, 0));
    mean_r += static_cast<double>(d.domain().Coordinate(t, 2));
  }
  EXPECT_GT(mean_r, mean_b);
}

TEST(AdultCapitalLossLikeTest, SparsityMatchesPaperSetting) {
  Random rng(6);
  Dataset d = GenerateAdultCapitalLossLike(48842, rng).value();
  EXPECT_EQ(d.domain().size(), 4357u);
  Histogram h = d.CompleteHistogram().value();
  // ~95% zeros.
  EXPECT_GT(h[0] / h.Total(), 0.94);
  // Distinct cumulative counts p << |T| — the property Sec 7.1 exploits.
  EXPECT_LT(h.NumDistinctCumulative(), 300u);
  EXPECT_GT(h.NumNonZero(), 10u);
}

TEST(GaussianClustersTest, PaperSpec) {
  Random rng(7);
  Dataset d = GenerateGaussianClusters(1000, 4, 64, rng).value();
  EXPECT_EQ(d.size(), 1000u);
  EXPECT_EQ(d.domain().num_attributes(), 4u);
  EXPECT_EQ(d.domain().attribute(0).cardinality, 64u);
  // Physical extent per axis is (64-1)/64 ~ 1.0.
  EXPECT_NEAR(d.domain().Diameter(), 4.0 * 63.0 / 64.0, 1e-9);
  EXPECT_FALSE(GenerateGaussianClusters(10, 0, 64, rng).ok());
}

TEST(SubsampleTest, SizesAndMembership) {
  Random rng(8);
  Dataset d = GenerateAdultCapitalLossLike(10000, rng).value();
  Dataset s10 = Subsample(d, 0.1, rng).value();
  EXPECT_EQ(s10.size(), 1000u);
  Dataset s_all = Subsample(d, 1.0, rng).value();
  EXPECT_EQ(s_all.size(), d.size());
  // Every sampled tuple value exists in the parent dataset.
  std::set<ValueIndex> parent(d.tuples().begin(), d.tuples().end());
  for (ValueIndex t : s10.tuples()) EXPECT_TRUE(parent.count(t));
  EXPECT_FALSE(Subsample(d, 0.0, rng).ok());
  EXPECT_FALSE(Subsample(d, 1.5, rng).ok());
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Random a(99), b(99);
  Dataset da = GenerateSkinLike(500, a).value();
  Dataset db = GenerateSkinLike(500, b).value();
  EXPECT_EQ(da.tuples(), db.tuples());
}

}  // namespace
}  // namespace blowfish
