// Privacy audit log battery (src/obs/audit.h, src/obs/jsonl.h,
// src/server/audit_replay.h):
//
//  * audit lines open with the {"event":...} discriminator and stay
//    flat JSON the obs/jsonl.h parser round-trips exactly;
//  * the AuditLog sink is free until opened, and its lines survive a
//    read-back through the shared parser (writer and reader agree on
//    one escaping discipline);
//  * the headline replay guarantee: a real ReleaseEngine run — charges,
//    a parallel-group admission, a refusal, a post-charge refund, an
//    explicit session open, settlement — writes an audit log that
//    replays into a fresh BudgetAccountant reproducing the persisted
//    ledger BYTE FOR BYTE, while trace spans and foreign tenants'
//    events in the same stream are skipped;
//  * tampering — a dropped charge line, an edited epsilon — is
//    detected, not silently absorbed.

#include "server/audit_replay.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "obs/audit.h"
#include "obs/jsonl.h"
#include "obs/trace.h"
#include "util/random.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;

/// A query kind that fails after admission — the refund path must show
/// up in the audit log and replay cleanly. Registered only in this
/// test binary.
class AuditFailOp final : public QueryOp {
 public:
  std::string KindName() const override { return "audit_fail"; }
  Status Parse(KeyValueBag&) override { return Status::OK(); }
  StatusOr<std::string> SensitivityShape() const override {
    return std::string("audit_fail");
  }
  StatusOr<double> ComputeSensitivity(
      const Policy&, const SensitivityEnv&) const override {
    return 1.0;
  }
  StatusOr<std::vector<double>> Execute(const QueryExecContext&,
                                        Random) const override {
    return Status::Internal("injected post-admission failure");
  }
};

const QueryOpRegistrar kFailRegistrar{
    "audit_fail", [] { return std::make_unique<AuditFailOp>(); }};

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

std::shared_ptr<const Domain> GridDomain(uint64_t m, size_t k) {
  return std::make_shared<const Domain>(Domain::Grid(m, k).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 7) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

QueryRequest Request(
    const std::string& kind, double eps,
    const std::vector<std::pair<std::string, std::string>>& kv = {}) {
  auto request = MakeQueryRequest(kind, eps, kv);
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return std::move(*request);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/audit_test_" + name + ".jsonl";
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AuditEventTest, OpensWithTheEventDiscriminator) {
  obs::TraceEvent event("event", "charge");
  event.Str("session", "s")
      .Double("eps", 0.25)
      .Uint("charge_id", 7)
      .Bool("parallel", false);
  EXPECT_EQ(std::move(event).Finish(),
            "{\"event\":\"charge\",\"session\":\"s\",\"eps\":0.25,"
            "\"charge_id\":7,\"parallel\":false}");
}

TEST(AuditLogTest, DisabledUntilOpenedAndLinesRoundTripTheParser) {
  obs::AuditLog log;
  EXPECT_FALSE(log.enabled());
  log.Write(obs::TraceEvent("event", "charge"));  // no-op, must not crash

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(log.Open(path));
  EXPECT_TRUE(log.enabled());
  // A label with every escape class the writer handles: quote,
  // backslash, newline, tab, a control byte.
  const std::string label = "he said \"hi\"\\\n\tctrl:\x02";
  {
    obs::TraceEvent event("event", "refund");
    event.Str("session", "s1")
        .Str("label", label)
        .Double("charged", 0.125)
        .Uint("charge_id", 3);
    log.Write(std::move(event));
  }
  log.Flush();
  log.Close();
  EXPECT_FALSE(log.enabled());

  const std::vector<std::string> lines = SplitLines(ReadFile(path));
  ASSERT_EQ(lines.size(), 1u);
  std::vector<obs::JsonField> fields;
  ASSERT_TRUE(obs::ParseFlatJsonLine(lines[0], &fields));
  const obs::JsonField* kind = obs::FindJsonField(fields, "event");
  ASSERT_NE(kind, nullptr);
  EXPECT_TRUE(kind->is_string);
  EXPECT_EQ(kind->value, "refund");
  const obs::JsonField* parsed_label = obs::FindJsonField(fields, "label");
  ASSERT_NE(parsed_label, nullptr);
  EXPECT_EQ(parsed_label->value, label);  // escaping is an exact round trip
  const obs::JsonField* charged = obs::FindJsonField(fields, "charged");
  ASSERT_NE(charged, nullptr);
  EXPECT_FALSE(charged->is_string);
  EXPECT_EQ(charged->value, "0.125");  // literal token text, not decoded
}

TEST(JsonlTest, RejectsWhatTheWriterNeverEmits) {
  std::vector<obs::JsonField> fields;
  // Nesting, arrays, garbage, and malformed escapes are not flat lines.
  EXPECT_FALSE(obs::ParseFlatJsonLine("{\"a\":{\"b\":1}}", &fields));
  EXPECT_FALSE(obs::ParseFlatJsonLine("{\"a\":[1,2]}", &fields));
  EXPECT_FALSE(obs::ParseFlatJsonLine("not json", &fields));
  EXPECT_FALSE(obs::ParseFlatJsonLine("{\"a\":1} trailing", &fields));
  EXPECT_FALSE(obs::ParseFlatJsonLine("{\"a\":\"\\x41\"}", &fields));
  EXPECT_FALSE(obs::ParseFlatJsonLine("{\"a\":1", &fields));

  // Unicode escapes decode; duplicate keys are kept in order and
  // FindJsonField returns the first.
  ASSERT_TRUE(obs::ParseFlatJsonLine(
      "{\"a\":\"\\u0041\",\"a\":\"second\",\"n\":null}", &fields));
  ASSERT_EQ(fields.size(), 3u);
  const obs::JsonField* first = obs::FindJsonField(fields, "a");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, "A");
  const obs::JsonField* null_field = obs::FindJsonField(fields, "n");
  ASSERT_NE(null_field, nullptr);
  EXPECT_FALSE(null_field->is_string);
  EXPECT_EQ(null_field->value, "null");
}

/// Runs the canonical audited engine history used by the replay tests:
/// sequential charges, a parallel-group admission, a mid-batch failure
/// that refunds, an explicit session open, and a budget refusal — every
/// audit event kind the engine can emit — against a grid-partition
/// policy. Returns the persisted ledger text; the audit log lands at
/// `audit_path`.
std::string RunAuditedHistory(const std::string& audit_path,
                              const std::string& scope) {
  obs::AuditLog audit;
  EXPECT_TRUE(audit.Open(audit_path));
  obs::MetricsRegistry scratch_metrics;

  auto domain = GridDomain(4, 2);
  Policy policy = Policy::GridPartition(domain, {2, 2}).value();
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 1.0;
  options.metrics = &scratch_metrics;
  options.metrics_scope = scope;
  options.audit = &audit;
  auto engine = ReleaseEngine::Create(policy, MakeData(domain, 300), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();

  // Batch 1: one sequential charge plus a parallel group charged
  // max(0.3, 0.5) = 0.5 under Thm 4.2. Default session: 0.75 spent.
  auto b1 = (*engine)->ServeBatch(
      {Request("histogram", 0.25, {{"label", "h"}}),
       Request("cell_histogram", 0.3, {{"cells", "0"}, {"group", "g"}}),
       Request("cell_histogram", 0.5, {{"cells", "3"}, {"group", "g"}})});
  for (const QueryResponse& r : b1) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }

  // Batch 2: a post-admission failure (charged, then refunded) and an
  // auto-created session s1 — no "open" event, so the replay must
  // recover its cap from the charge record.
  auto b2 = (*engine)->ServeBatch(
      {Request("audit_fail", 0.125),
       Request("histogram", 0.25, {{"session", "s1"}})});
  EXPECT_EQ(b2[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(b2[0].receipt.refunded);
  EXPECT_TRUE(b2[1].status.ok()) << b2[1].status.ToString();

  // Batch 3: 0.75 + 0.5 > 1.0 — refused, never touches the ledger.
  auto b3 = (*engine)->ServeBatch({Request("histogram", 0.5)});
  EXPECT_EQ(b3[0].status.code(), StatusCode::kResourceExhausted);

  // An explicitly opened session, then a charge against it.
  EXPECT_TRUE((*engine)->accountant().OpenSession("vip", 2.0).ok());
  auto b4 = (*engine)->ServeBatch(
      {Request("histogram", 0.25, {{"session", "vip"}})});
  EXPECT_TRUE(b4[0].status.ok()) << b4[0].status.ToString();

  std::ostringstream ledger;
  EXPECT_TRUE((*engine)->accountant().Save(ledger).ok());
  audit.Close();
  return ledger.str();
}

TEST(AuditReplayTest, EngineAuditLogReplaysToTheLedgerByteForByte) {
  const std::string path = TempPath("replay");
  const std::string ledger = RunAuditedHistory(path, "t");

  std::ifstream audit(path);
  ASSERT_TRUE(audit.good());
  auto stats = VerifyAuditReplay(audit, "t", ledger);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->opens, 1u);     // vip only; "" and s1 auto-created
  EXPECT_EQ(stats->charges, 5u);   // h, group, audit_fail, s1, vip
  EXPECT_EQ(stats->refunds, 1u);   // audit_fail
  EXPECT_EQ(stats->refusals, 1u);  // the over-budget batch 3
  EXPECT_GE(stats->settles, 3u);
  EXPECT_EQ(stats->skipped, 0u);

  // Foreign lines in the stream — trace spans, blank lines — are
  // skipped, not errors: one file can hold several telemetry kinds.
  std::istringstream mixed(
      "{\"span\":\"query\",\"trace\":3,\"dur_us\":12}\n\n" +
      ReadFile(path));
  auto mixed_stats = VerifyAuditReplay(mixed, "t", ledger);
  ASSERT_TRUE(mixed_stats.ok()) << mixed_stats.status().ToString();
  EXPECT_EQ(mixed_stats->skipped, 2u);
  EXPECT_EQ(mixed_stats->charges, 5u);

  // The tenant filter is exact: replaying another tenant's scope finds
  // nothing, so the rebuilt (empty) ledger cannot match.
  std::ifstream wrong_tenant(path);
  auto mismatch = VerifyAuditReplay(wrong_tenant, "other", ledger);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInternal);

  std::ifstream recount(path);
  obs::MetricsRegistry scratch;
  obs::AuditLog silent;
  BudgetAccountant fresh(0.0, &scratch, "", &silent);
  auto skipped_all = ReplayAuditLog(recount, "other", &fresh);
  ASSERT_TRUE(skipped_all.ok());
  EXPECT_EQ(skipped_all->charges, 0u);
}

TEST(AuditReplayTest, EmptyDatasetMeanRefusedBeforeChargingLeavesLogClean) {
  // `mean` of an empty dataset is refused at ADMISSION (ValidateData,
  // before sensitivity resolution and charging), not admitted and then
  // failed in Execute: the audit log must show no charge/refund churn
  // for the doomed query — only the served histogram's single charge —
  // and the ledger must still replay byte for byte.
  const std::string path = TempPath("empty_mean");
  obs::AuditLog audit;
  ASSERT_TRUE(audit.Open(path));
  obs::MetricsRegistry scratch_metrics;

  auto domain = LineDomain(8);
  Policy policy = Policy::GridPartition(domain, {2}).value();
  Dataset empty = Dataset::Create(domain, {}).value();
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 1.0;
  options.metrics = &scratch_metrics;
  options.metrics_scope = "t";
  options.audit = &audit;
  auto engine = ReleaseEngine::Create(policy, empty, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto responses = (*engine)->ServeBatch(
      {Request("mean", 0.25), Request("histogram", 0.25)});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(responses[0].status.message().find("empty dataset"),
            std::string::npos)
      << responses[0].status.message();
  EXPECT_FALSE(responses[0].receipt.refunded);
  EXPECT_DOUBLE_EQ(responses[0].receipt.charged, 0.0);
  EXPECT_TRUE(responses[1].status.ok()) << responses[1].status.ToString();
  EXPECT_DOUBLE_EQ((*engine)->accountant().Spent(""), 0.25);

  std::ostringstream ledger;
  ASSERT_TRUE((*engine)->accountant().Save(ledger).ok());
  audit.Close();

  size_t charges = 0, refunds = 0;
  for (const std::string& line : SplitLines(ReadFile(path))) {
    if (line.find("\"event\":\"charge\"") != std::string::npos) ++charges;
    if (line.find("\"event\":\"refund\"") != std::string::npos) ++refunds;
  }
  EXPECT_EQ(charges, 1u);  // the histogram; the refused mean is absent
  EXPECT_EQ(refunds, 0u);

  std::ifstream replay(path);
  auto stats = VerifyAuditReplay(replay, "t", ledger.str());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->charges, 1u);
  EXPECT_EQ(stats->refunds, 0u);
}

TEST(AuditReplayTest, TamperedLogsAreDetected) {
  const std::string path = TempPath("tamper");
  const std::string ledger = RunAuditedHistory(path, "t");
  const std::vector<std::string> lines = SplitLines(ReadFile(path));

  size_t first_charge = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("\"event\":\"charge\"") != std::string::npos) {
      first_charge = i;
      break;
    }
  }
  ASSERT_LT(first_charge, lines.size());

  // Dropping a charge desynchronizes the minted charge ids (or the
  // final spend): the replay must refuse, not shrug.
  {
    std::ostringstream truncated;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != first_charge) truncated << lines[i] << "\n";
    }
    std::istringstream in(truncated.str());
    auto verdict = VerifyAuditReplay(in, "t", ledger);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.status().code(), StatusCode::kInternal);
  }

  // Editing a charge's amount breaks the per-line `remaining`
  // cross-check even before the final ledger compare.
  {
    std::string edited_line = lines[first_charge];
    const size_t at = edited_line.find("\"charged\":0.25");
    ASSERT_NE(at, std::string::npos) << edited_line;
    edited_line.replace(at, std::string("\"charged\":0.25").size(),
                        "\"charged\":0.125");
    std::ostringstream edited;
    for (size_t i = 0; i < lines.size(); ++i) {
      edited << (i == first_charge ? edited_line : lines[i]) << "\n";
    }
    std::istringstream in(edited.str());
    auto verdict = VerifyAuditReplay(in, "t", ledger);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.status().code(), StatusCode::kInternal);
    EXPECT_NE(verdict.status().message().find("remaining"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace blowfish
