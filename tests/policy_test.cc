#include "core/policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeGrid(uint64_t m, size_t k) {
  return std::make_shared<const Domain>(Domain::Grid(m, k).value());
}

TEST(PolicyTest, CreateValidation) {
  auto dom = MakeGrid(3, 2);
  auto wrong_graph = std::make_shared<FullGraph>(5);  // size mismatch
  EXPECT_FALSE(Policy::Create(dom, wrong_graph).ok());
  auto right_graph = std::make_shared<FullGraph>(dom->size());
  EXPECT_TRUE(Policy::Create(dom, right_graph).ok());
  EXPECT_FALSE(Policy::Create(nullptr, right_graph).ok());
  EXPECT_FALSE(Policy::Create(dom, nullptr).ok());
}

TEST(PolicyTest, FullDomainFactory) {
  auto dom = MakeGrid(3, 2);
  Policy p = Policy::FullDomain(dom).value();
  EXPECT_EQ(p.graph().name(), "full");
  EXPECT_EQ(p.graph().num_vertices(), 9u);
  EXPECT_FALSE(p.has_constraints());
}

TEST(PolicyTest, AttributeFactory) {
  auto dom = MakeGrid(3, 2);
  Policy p = Policy::Attribute(dom).value();
  EXPECT_EQ(p.graph().name(), "attr");
  ValueIndex a = dom->Encode({0, 0});
  EXPECT_TRUE(p.graph().Adjacent(a, dom->Encode({0, 1})));
  EXPECT_FALSE(p.graph().Adjacent(a, dom->Encode({1, 1})));
}

TEST(PolicyTest, GridPartitionFactory) {
  auto dom = MakeGrid(4, 2);
  Policy p = Policy::GridPartition(dom, {2, 2}).value();
  EXPECT_EQ(p.graph().name(), "partition|4");
  EXPECT_FALSE(Policy::GridPartition(dom, {3}).ok());
}

TEST(PolicyTest, DistanceThresholdFactory) {
  auto dom = MakeGrid(4, 2);
  Policy p = Policy::DistanceThreshold(dom, 2.0).value();
  EXPECT_TRUE(p.graph().Adjacent(dom->Encode({0, 0}), dom->Encode({1, 1})));
  EXPECT_FALSE(Policy::DistanceThreshold(dom, 0.0).ok());
}

TEST(PolicyTest, LineFactoryRequires1D) {
  auto line = std::make_shared<const Domain>(Domain::Line(10).value());
  EXPECT_TRUE(Policy::Line(line).ok());
  EXPECT_FALSE(Policy::Line(MakeGrid(3, 2)).ok());
}

TEST(PolicyTest, ConstraintsAttach) {
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  ConstraintSet q;
  q.Add(CountQuery("low", [](ValueIndex x) { return x < 3; }));
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(dom->size()),
                            std::move(q))
                 .value();
  EXPECT_TRUE(p.has_constraints());
  EXPECT_EQ(p.constraints().size(), 1u);
}

TEST(PolicyTest, ToStringMentionsGraphAndSizes) {
  auto dom = MakeGrid(3, 2);
  Policy p = Policy::FullDomain(dom).value();
  std::string s = p.ToString();
  EXPECT_NE(s.find("full"), std::string::npos);
  EXPECT_NE(s.find("|T|=9"), std::string::npos);
}

}  // namespace
}  // namespace blowfish
