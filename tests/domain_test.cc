#include "core/domain.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

Domain MakeDomain223() {
  // The 2 x 2 x 3 domain of the paper's Example 8.1.
  return Domain::Create({Attribute{"A1", 2, 1.0}, Attribute{"A2", 2, 1.0},
                         Attribute{"A3", 3, 1.0}})
      .value();
}

TEST(DomainTest, CreateValidation) {
  EXPECT_FALSE(Domain::Create({}).ok());
  EXPECT_FALSE(Domain::Create({Attribute{"A", 0, 1.0}}).ok());
  EXPECT_FALSE(Domain::Create({Attribute{"A", 2, 0.0}}).ok());
  EXPECT_FALSE(Domain::Create({Attribute{"A", 2, -1.0}}).ok());
  EXPECT_TRUE(Domain::Create({Attribute{"A", 2, 1.0}}).ok());
}

TEST(DomainTest, SizeOverflowRejected) {
  // 8 attributes of cardinality 256 = 2^64 > 2^62: must be rejected.
  std::vector<Attribute> attrs(8, Attribute{"A", uint64_t{1} << 8, 1.0});
  EXPECT_FALSE(Domain::Create(attrs).ok());
  // 7 attributes of cardinality 256 = 2^56 <= 2^62: fine.
  attrs.pop_back();
  EXPECT_TRUE(Domain::Create(attrs).ok());
}

TEST(DomainTest, SizeAndAttributes) {
  Domain d = MakeDomain223();
  EXPECT_EQ(d.size(), 12u);
  EXPECT_EQ(d.num_attributes(), 3u);
  EXPECT_EQ(d.attribute(2).cardinality, 3u);
}

TEST(DomainTest, EncodeDecodeRoundTrip) {
  Domain d = MakeDomain223();
  for (ValueIndex x = 0; x < d.size(); ++x) {
    std::vector<uint64_t> coords = d.Decode(x);
    EXPECT_EQ(d.Encode(coords), x);
  }
}

TEST(DomainTest, EncodeIsRowMajor) {
  Domain d = MakeDomain223();
  // Last attribute varies fastest.
  EXPECT_EQ(d.Encode({0, 0, 0}), 0u);
  EXPECT_EQ(d.Encode({0, 0, 1}), 1u);
  EXPECT_EQ(d.Encode({0, 1, 0}), 3u);
  EXPECT_EQ(d.Encode({1, 0, 0}), 6u);
}

TEST(DomainTest, CoordinateMatchesDecode) {
  Domain d = MakeDomain223();
  for (ValueIndex x = 0; x < d.size(); ++x) {
    std::vector<uint64_t> coords = d.Decode(x);
    for (size_t i = 0; i < d.num_attributes(); ++i) {
      EXPECT_EQ(d.Coordinate(x, i), coords[i]);
    }
  }
}

TEST(DomainTest, WithCoordinate) {
  Domain d = MakeDomain223();
  ValueIndex x = d.Encode({1, 0, 2});
  EXPECT_EQ(d.WithCoordinate(x, 0, 0), d.Encode({0, 0, 2}));
  EXPECT_EQ(d.WithCoordinate(x, 2, 0), d.Encode({1, 0, 0}));
  EXPECT_EQ(d.WithCoordinate(x, 1, 1), d.Encode({1, 1, 2}));
  EXPECT_EQ(d.WithCoordinate(x, 1, 0), x);  // no-op change
}

TEST(DomainTest, L1DistanceUnitScales) {
  Domain d = MakeDomain223();
  EXPECT_DOUBLE_EQ(d.L1Distance(d.Encode({0, 0, 0}), d.Encode({1, 1, 2})),
                   4.0);
  EXPECT_DOUBLE_EQ(d.L1Distance(d.Encode({1, 0, 1}), d.Encode({1, 0, 1})),
                   0.0);
}

TEST(DomainTest, L1DistanceScaled) {
  Domain d = Domain::Create({Attribute{"x", 10, 2.5},
                             Attribute{"y", 10, 0.5}}).value();
  ValueIndex a = d.Encode({0, 0});
  ValueIndex b = d.Encode({3, 4});
  EXPECT_DOUBLE_EQ(d.L1Distance(a, b), 3 * 2.5 + 4 * 0.5);
}

TEST(DomainTest, HammingDistance) {
  Domain d = MakeDomain223();
  EXPECT_EQ(d.HammingDistance(d.Encode({0, 0, 0}), d.Encode({0, 0, 0})), 0u);
  EXPECT_EQ(d.HammingDistance(d.Encode({0, 0, 0}), d.Encode({0, 0, 2})), 1u);
  EXPECT_EQ(d.HammingDistance(d.Encode({0, 0, 0}), d.Encode({1, 1, 2})), 3u);
}

TEST(DomainTest, Diameter) {
  Domain d = MakeDomain223();
  EXPECT_DOUBLE_EQ(d.Diameter(), 1.0 + 1.0 + 2.0);
  Domain scaled =
      Domain::Create({Attribute{"x", 400, 5.55}}).value();
  EXPECT_DOUBLE_EQ(scaled.Diameter(), 399 * 5.55);
}

TEST(DomainTest, PointEmbedding) {
  Domain d = Domain::Create({Attribute{"x", 10, 2.0},
                             Attribute{"y", 5, 1.0}}).value();
  std::vector<double> p = d.Point(d.Encode({3, 4}));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 6.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(DomainTest, LineFactory) {
  Domain d = Domain::Line(100, 0.5, "salary").value();
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.num_attributes(), 1u);
  EXPECT_EQ(d.attribute(0).name, "salary");
  EXPECT_DOUBLE_EQ(d.attribute(0).scale, 0.5);
}

TEST(DomainTest, GridFactory) {
  Domain d = Domain::Grid(16, 3).value();
  EXPECT_EQ(d.size(), 16u * 16 * 16);
  EXPECT_EQ(d.num_attributes(), 3u);
  EXPECT_FALSE(Domain::Grid(4, 0).ok());
}

}  // namespace
}  // namespace blowfish
