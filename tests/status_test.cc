#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace blowfish {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  BLOWFISH_ASSIGN_OR_RETURN(int h, Half(x));
  BLOWFISH_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

Status CheckPositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  BLOWFISH_RETURN_IF_ERROR(CheckPositive(a));
  BLOWFISH_RETURN_IF_ERROR(CheckPositive(b));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, 0).ok());
}

}  // namespace
}  // namespace blowfish
