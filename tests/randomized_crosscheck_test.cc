// Randomized cross-checks ("fuzz-lite"): random explicit graphs, random
// constraints, and random datasets, validating the analytic machinery
// against the brute-force oracles across many seeds. These tests are the
// library's defence against structural blind spots in the hand-picked
// unit-test cases.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/neighbors.h"
#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/sensitivity.h"
#include "mech/constrained_inference.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::unique_ptr<ExplicitGraph> RandomGraph(uint64_t n, double edge_prob,
                                           Random& rng) {
  std::vector<std::pair<ValueIndex, ValueIndex>> edges;
  for (ValueIndex x = 0; x < n; ++x) {
    for (ValueIndex y = x + 1; y < n; ++y) {
      if (rng.Bernoulli(edge_prob)) edges.emplace_back(x, y);
    }
  }
  return ExplicitGraph::Create(n, edges).value();
}

class RandomizedSensitivityTest : public ::testing::TestWithParam<int> {};

// For random graphs: the generic engine's histogram / cumulative
// sensitivity equals the brute-force Def 5.1 value.
TEST_P(RandomizedSensitivityTest, GenericEngineMatchesOracle) {
  Random rng(1000 + GetParam());
  const uint64_t n = 4;
  auto dom = std::make_shared<const Domain>(Domain::Line(n).value());
  auto graph = RandomGraph(n, 0.5, rng);
  bool has_edge = false;
  (void)graph->ForEachEdge(
      [&has_edge](ValueIndex, ValueIndex) { has_edge = true; }, 1);
  if (!has_edge) return;  // edgeless draws are trivial
  Policy p = Policy::Create(dom, std::shared_ptr<const SecretGraph>(
                                     std::move(graph)))
                 .value();

  CumulativeHistogramQuery cum_query(n);
  double engine =
      UnconstrainedSensitivity(cum_query, p.graph(), 1000).value();
  auto cumulative = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    for (size_t i = 1; i < h.size(); ++i) h[i] += h[i - 1];
    return h;
  };
  double oracle = BruteForceSensitivity(p, 2, 1000, cumulative).value();
  EXPECT_DOUBLE_EQ(engine, oracle) << "seed " << GetParam();
}

// For random graphs + one random threshold constraint: the Thm 8.2
// policy-graph bound dominates the brute-force sensitivity.
TEST_P(RandomizedSensitivityTest, PolicyGraphBoundDominatesOracle) {
  Random rng(2000 + GetParam());
  const uint64_t n = 4;
  auto dom = std::make_shared<const Domain>(Domain::Line(n).value());
  auto graph = RandomGraph(n, 0.6, rng);
  uint64_t threshold = static_cast<uint64_t>(rng.UniformInt(1, 3));
  ConstraintSet cs;
  cs.AddWithAnswer(CountQuery("low", [threshold](ValueIndex x) {
                     return x < threshold;
                   }),
                   1);
  auto shared_graph =
      std::shared_ptr<const SecretGraph>(std::move(graph));
  auto pg_or = PolicyGraph::Build(cs, *shared_graph, 1000);
  if (!pg_or.ok()) return;  // a single constraint is always sparse, but
                            // stay robust
  double bound = pg_or.value().HistogramSensitivityBound().value();

  Policy p = Policy::Create(dom, shared_graph, std::move(cs)).value();
  auto hist = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    return h;
  };
  double oracle = BruteForceSensitivity(p, 2, 10000, hist).value();
  EXPECT_LE(oracle, bound + 1e-9) << "seed " << GetParam();
}

// Random explicit graphs: Materialize(graph) is an identity-preserving
// round trip for adjacency and BFS distances.
TEST_P(RandomizedSensitivityTest, MaterializeRoundTrip) {
  Random rng(3000 + GetParam());
  auto graph = RandomGraph(8, 0.3, rng);
  auto copy = Materialize(*graph, 1000).value();
  for (ValueIndex x = 0; x < 8; ++x) {
    for (ValueIndex y = 0; y < 8; ++y) {
      EXPECT_EQ(graph->Adjacent(x, y), copy->Adjacent(x, y));
      EXPECT_DOUBLE_EQ(graph->Distance(x, y), copy->Distance(x, y));
    }
  }
}

// Random monotone-ish sequences: PAVA output is always the closest
// monotone sequence (checked against an O(n^2) reference DP for small n).
TEST_P(RandomizedSensitivityTest, PavaMatchesReferenceOnSmallInputs) {
  Random rng(4000 + GetParam());
  const size_t n = 7;
  std::vector<double> ys(n);
  for (double& y : ys) y = std::round(rng.Uniform(-3, 3));
  std::vector<double> fitted = IsotonicRegression(ys).value();
  // Reference check via optimality conditions: fitted is monotone and
  // has no strictly better single-block perturbation.
  double base_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    base_cost += (fitted[i] - ys[i]) * (fitted[i] - ys[i]);
    if (i > 0) {
      ASSERT_GE(fitted[i] + 1e-12, fitted[i - 1]);
    }
  }
  // Perturb each maximal constant block by +-delta; cost must not drop
  // (KKT condition for the isotonic projection).
  for (size_t start = 0; start < n;) {
    size_t end = start;
    while (end + 1 < n && std::fabs(fitted[end + 1] - fitted[start]) < 1e-12)
      ++end;
    for (double delta : {-0.01, 0.01}) {
      std::vector<double> alt = fitted;
      for (size_t i = start; i <= end; ++i) alt[i] += delta;
      bool monotone = true;
      for (size_t i = 1; i < n; ++i) {
        if (alt[i] + 1e-12 < alt[i - 1]) monotone = false;
      }
      if (!monotone) continue;
      double cost = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cost += (alt[i] - ys[i]) * (alt[i] - ys[i]);
      }
      EXPECT_GE(cost + 1e-9, base_cost) << "seed " << GetParam();
    }
    start = end + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSensitivityTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace blowfish
