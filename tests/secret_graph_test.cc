#include "core/secret_graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/domain.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeGrid(uint64_t m, size_t k,
                                       double scale = 1.0) {
  return std::make_shared<const Domain>(Domain::Grid(m, k, scale).value());
}

// --- FullGraph ---

TEST(FullGraphTest, AdjacencyAndDistance) {
  FullGraph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_TRUE(g.Adjacent(0, 4));
  EXPECT_FALSE(g.Adjacent(2, 2));
  EXPECT_DOUBLE_EQ(g.Distance(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(g.Distance(3, 3), 0.0);
}

TEST(FullGraphTest, EdgeCount) {
  FullGraph g(6);
  size_t edges = 0;
  ASSERT_TRUE(g.ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 1000)
                  .ok());
  EXPECT_EQ(edges, 15u);  // C(6,2)
}

TEST(FullGraphTest, EdgeBudgetEnforced) {
  FullGraph g(100);
  size_t edges = 0;
  Status st = g.ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 10);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(edges, 10u);
}

// --- AttributeGraph ---

TEST(AttributeGraphTest, AdjacentIffOneAttributeDiffers) {
  auto dom = MakeGrid(3, 2);
  AttributeGraph g(dom);
  ValueIndex a = dom->Encode({0, 0});
  ValueIndex b = dom->Encode({0, 2});
  ValueIndex c = dom->Encode({1, 2});
  EXPECT_TRUE(g.Adjacent(a, b));   // one attribute differs
  EXPECT_FALSE(g.Adjacent(a, c));  // two attributes differ
  EXPECT_FALSE(g.Adjacent(a, a));
  EXPECT_DOUBLE_EQ(g.Distance(a, c), 2.0);  // Hamming
}

TEST(AttributeGraphTest, EdgeCountFormula) {
  // For an m x m grid: edges = 2 * m * C(m,2) = m^2 (m-1).
  auto dom = MakeGrid(4, 2);
  AttributeGraph g(dom);
  size_t edges = 0;
  ASSERT_TRUE(g.ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; },
                            uint64_t{1} << 20)
                  .ok());
  EXPECT_EQ(edges, 4u * 4 * 3);
}

// --- PartitionGraph ---

TEST(PartitionGraphTest, WithinCellOnly) {
  // 1-D domain of 6 split into 2 cells of 3.
  auto dom = std::make_shared<const Domain>(Domain::Line(6).value());
  auto g = PartitionGraph::UniformGrid(dom, {2}).value();
  EXPECT_TRUE(g->Adjacent(0, 2));
  EXPECT_FALSE(g->Adjacent(2, 3));  // crosses the cell boundary
  EXPECT_DOUBLE_EQ(g->Distance(0, 2), 1.0);
  EXPECT_EQ(g->Distance(0, 5), kInfiniteDistance);
  EXPECT_EQ(g->CellOf(0), g->CellOf(2));
  EXPECT_NE(g->CellOf(2), g->CellOf(3));
}

TEST(PartitionGraphTest, UniformGridValidation) {
  auto dom = MakeGrid(4, 2);
  EXPECT_FALSE(PartitionGraph::UniformGrid(dom, {2}).ok());      // arity
  EXPECT_FALSE(PartitionGraph::UniformGrid(dom, {0, 2}).ok());   // zero
  EXPECT_FALSE(PartitionGraph::UniformGrid(dom, {5, 2}).ok());   // > card
  EXPECT_TRUE(PartitionGraph::UniformGrid(dom, {2, 2}).ok());
}

TEST(PartitionGraphTest, MaxEdgeL1Hint) {
  auto dom = MakeGrid(6, 2, 2.0);  // scale 2 per axis
  auto g = PartitionGraph::UniformGrid(dom, {2, 3}).value();
  ASSERT_TRUE(g->max_edge_l1().has_value());
  // Blocks: 3 wide on axis0, 2 wide on axis1 -> diameter 2*(3-1) + 2*(2-1).
  EXPECT_DOUBLE_EQ(*g->max_edge_l1(), 2.0 * 2 + 2.0 * 1);
}

TEST(PartitionGraphTest, TrivialPartitionIsComplete) {
  auto dom = std::make_shared<const Domain>(Domain::Line(5).value());
  auto g = PartitionGraph::UniformGrid(dom, {1}).value();
  size_t edges = 0;
  ASSERT_TRUE(
      g->ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 100).ok());
  EXPECT_EQ(edges, 10u);  // complete graph on 5 vertices
}

// --- DistanceThresholdGraph ---

TEST(DistanceThresholdGraphTest, CreateValidation) {
  auto dom = MakeGrid(4, 2);
  EXPECT_FALSE(DistanceThresholdGraph::Create(dom, 0.0).ok());
  EXPECT_FALSE(DistanceThresholdGraph::Create(dom, -1.0).ok());
  EXPECT_TRUE(DistanceThresholdGraph::Create(dom, 1.0).ok());
}

TEST(DistanceThresholdGraphTest, AdjacencyRespectsTheta) {
  auto dom = MakeGrid(10, 2);
  auto g = DistanceThresholdGraph::Create(dom, 2.0).value();
  ValueIndex a = dom->Encode({0, 0});
  EXPECT_TRUE(g->Adjacent(a, dom->Encode({0, 2})));   // d = 2
  EXPECT_TRUE(g->Adjacent(a, dom->Encode({1, 1})));   // d = 2
  EXPECT_FALSE(g->Adjacent(a, dom->Encode({1, 2})));  // d = 3
  EXPECT_FALSE(g->Adjacent(a, a));
}

TEST(DistanceThresholdGraphTest, DistanceUniformScaleIsCeil) {
  auto dom = std::make_shared<const Domain>(Domain::Line(100).value());
  auto g = DistanceThresholdGraph::Create(dom, 3.0).value();
  EXPECT_DOUBLE_EQ(g->Distance(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(g->Distance(0, 4), 2.0);
  EXPECT_DOUBLE_EQ(g->Distance(0, 9), 3.0);
  EXPECT_DOUBLE_EQ(g->Distance(5, 5), 0.0);
}

TEST(DistanceThresholdGraphTest, DisconnectedWhenScaleExceedsTheta) {
  auto dom = std::make_shared<const Domain>(
      Domain::Create({Attribute{"a", 4, 1.0}, Attribute{"b", 4, 10.0}})
          .value());
  auto g = DistanceThresholdGraph::Create(dom, 2.0).value();
  ValueIndex x = dom->Encode({0, 0});
  ValueIndex y = dom->Encode({0, 1});  // differs on the coarse axis
  EXPECT_FALSE(g->Adjacent(x, y));
  EXPECT_EQ(g->Distance(x, y), kInfiniteDistance);
  // Fine-axis moves still connected.
  EXPECT_DOUBLE_EQ(g->Distance(x, dom->Encode({3, 0})), 2.0);
}

TEST(DistanceThresholdGraphTest, MixedScaleDistanceIsUpperBound) {
  auto dom = std::make_shared<const Domain>(
      Domain::Create({Attribute{"a", 10, 2.0}, Attribute{"b", 10, 1.0}})
          .value());
  auto g = DistanceThresholdGraph::Create(dom, 3.0).value();
  ValueIndex x = dom->Encode({0, 0});
  ValueIndex y = dom->Encode({3, 3});  // L1 distance 9
  double d = g->Distance(x, y);
  // Lower bound ceil(9/3) = 3; any valid packing is an upper bound.
  EXPECT_GE(d, 3.0);
  EXPECT_LE(d, 9.0);
}

// Cross-check every implicit graph against its materialized explicit twin.
class GraphCrossCheckTest
    : public ::testing::TestWithParam<std::shared_ptr<const SecretGraph>> {};

TEST_P(GraphCrossCheckTest, AdjacencyMatchesMaterialized) {
  const SecretGraph& g = *GetParam();
  auto explicit_g = Materialize(g, uint64_t{1} << 22).value();
  ASSERT_EQ(explicit_g->num_vertices(), g.num_vertices());
  for (ValueIndex x = 0; x < g.num_vertices(); ++x) {
    for (ValueIndex y = 0; y < g.num_vertices(); ++y) {
      EXPECT_EQ(g.Adjacent(x, y), explicit_g->Adjacent(x, y))
          << "pair (" << x << ", " << y << ") in " << g.name();
    }
  }
}

TEST_P(GraphCrossCheckTest, DistanceMatchesBfsOrIsSafeUpperBound) {
  const SecretGraph& g = *GetParam();
  auto explicit_g = Materialize(g, uint64_t{1} << 22).value();
  for (ValueIndex x = 0; x < g.num_vertices(); ++x) {
    for (ValueIndex y = 0; y < g.num_vertices(); ++y) {
      double implicit_d = g.Distance(x, y);
      double bfs_d = explicit_g->Distance(x, y);
      // Implicit distances must never *understate* the true path length
      // (that would overstate privacy); uniform-scale graphs are exact.
      EXPECT_GE(implicit_d + 1e-9, bfs_d)
          << "pair (" << x << ", " << y << ") in " << g.name();
    }
  }
}

std::vector<std::shared_ptr<const SecretGraph>> CrossCheckGraphs() {
  std::vector<std::shared_ptr<const SecretGraph>> graphs;
  auto grid = MakeGrid(4, 2);
  auto line = std::make_shared<const Domain>(Domain::Line(12).value());
  graphs.push_back(std::make_shared<FullGraph>(grid->size()));
  graphs.push_back(std::make_shared<AttributeGraph>(grid));
  graphs.push_back(std::shared_ptr<const SecretGraph>(
      PartitionGraph::UniformGrid(grid, {2, 2}).value().release()));
  graphs.push_back(std::shared_ptr<const SecretGraph>(
      DistanceThresholdGraph::Create(grid, 2.0).value().release()));
  graphs.push_back(std::shared_ptr<const SecretGraph>(
      DistanceThresholdGraph::Create(line, 3.0).value().release()));
  graphs.push_back(std::make_shared<LineGraph>(12));
  return graphs;
}

INSTANTIATE_TEST_SUITE_P(AllGraphKinds, GraphCrossCheckTest,
                         ::testing::ValuesIn(CrossCheckGraphs()));

// Uniform-scale distance must be *exactly* the BFS distance.
TEST(DistanceExactnessTest, UniformScaleMatchesBfs) {
  auto grid = MakeGrid(4, 2);
  auto g = DistanceThresholdGraph::Create(grid, 2.0).value();
  auto explicit_g = Materialize(*g, uint64_t{1} << 20).value();
  for (ValueIndex x = 0; x < g->num_vertices(); ++x) {
    for (ValueIndex y = 0; y < g->num_vertices(); ++y) {
      EXPECT_DOUBLE_EQ(g->Distance(x, y), explicit_g->Distance(x, y))
          << "(" << x << ", " << y << ")";
    }
  }
}

// --- LineGraph ---

TEST(LineGraphTest, Structure) {
  LineGraph g(5);
  EXPECT_TRUE(g.Adjacent(2, 3));
  EXPECT_TRUE(g.Adjacent(3, 2));
  EXPECT_FALSE(g.Adjacent(2, 4));
  EXPECT_DOUBLE_EQ(g.Distance(0, 4), 4.0);
  size_t edges = 0;
  ASSERT_TRUE(
      g.ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 100).ok());
  EXPECT_EQ(edges, 4u);
}

// --- ExplicitGraph ---

TEST(ExplicitGraphTest, CreateValidation) {
  EXPECT_FALSE(ExplicitGraph::Create(3, {{0, 3}}).ok());  // out of range
  EXPECT_FALSE(ExplicitGraph::Create(3, {{1, 1}}).ok());  // self loop
  EXPECT_TRUE(ExplicitGraph::Create(3, {{0, 1}, {1, 2}}).ok());
}

TEST(ExplicitGraphTest, DuplicateEdgesDeduped) {
  auto g = ExplicitGraph::Create(3, {{0, 1}, {1, 0}, {0, 1}}).value();
  size_t edges = 0;
  ASSERT_TRUE(
      g->ForEachEdge([&](ValueIndex, ValueIndex) { ++edges; }, 100).ok());
  EXPECT_EQ(edges, 1u);
}

TEST(ExplicitGraphTest, BfsDistance) {
  // Path 0-1-2-3 plus shortcut 0-3.
  auto g = ExplicitGraph::Create(5, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}).value();
  EXPECT_DOUBLE_EQ(g->Distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(g->Distance(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(g->Distance(0, 3), 1.0);
  EXPECT_EQ(g->Distance(0, 4), kInfiniteDistance);  // isolated vertex
}

}  // namespace
}  // namespace blowfish
