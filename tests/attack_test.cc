#include "core/attack.h"

#include <gtest/gtest.h>

#include <cmath>

namespace blowfish {
namespace {

TEST(AveragingAttackTest, ReconstructionIsExactWithoutNoise) {
  // With zero noise the estimators are all exact, so reconstruction must
  // return the true counts.
  std::vector<double> truth = {10.0, 3.0, 7.0, 5.0, 2.0};
  std::vector<double> a(truth.size() - 1);
  for (size_t i = 0; i + 1 < truth.size(); ++i) a[i] = truth[i] + truth[i + 1];
  std::vector<double> rec = AveragingAttackReconstruct(truth, a);
  ASSERT_EQ(rec.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(rec[i], truth[i], 1e-9) << "count " << i;
  }
}

TEST(AveragingAttackTest, VarianceShrinksAsPredicted) {
  Random rng(42);
  const size_t k = 64;
  std::vector<double> truth(k);
  for (size_t i = 0; i < k; ++i) truth[i] = 10.0 + (i % 7);
  const double scale = 2.0;  // Lap(2/eps) with eps = 1
  auto result = RunAveragingAttack(truth, scale, 400, rng).value();
  // Averaged-estimator variance should be ~ 2 scale^2 / k, far below the
  // raw noise variance 2 scale^2.
  EXPECT_NEAR(result.empirical_variance, result.predicted_variance,
              result.predicted_variance * 0.5);
  EXPECT_LT(result.empirical_variance, 2.0 * scale * scale / 10.0);
}

TEST(AveragingAttackTest, LargeKReconstructsAlmostExactly) {
  Random rng(7);
  const size_t k = 256;
  std::vector<double> truth(k);
  for (size_t i = 0; i < k; ++i) truth[i] = 5.0 + (i % 3);
  auto result = RunAveragingAttack(truth, 2.0, 50, rng).value();
  // With k = 256 the averaged estimator's std-dev is ~ 0.18, so rounding
  // recovers nearly every count — the Sec 3.2 privacy breach.
  EXPECT_GT(result.fraction_exact, 0.9);
  EXPECT_LT(result.mean_abs_error, result.raw_mean_abs_error / 5.0);
}

TEST(AveragingAttackTest, InputValidation) {
  Random rng(1);
  EXPECT_FALSE(RunAveragingAttack({1.0}, 1.0, 10, rng).ok());
  EXPECT_FALSE(RunAveragingAttack({1.0, 2.0}, 0.0, 10, rng).ok());
  EXPECT_FALSE(RunAveragingAttack({1.0, 2.0}, 1.0, 0, rng).ok());
}

}  // namespace
}  // namespace blowfish
