#include "data/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace blowfish {
namespace {

TEST(ExperimentTest, PaperEpsilons) {
  std::vector<double> eps = PaperEpsilons();
  ASSERT_EQ(eps.size(), 10u);
  EXPECT_NEAR(eps.front(), 0.1, 1e-12);
  EXPECT_NEAR(eps.back(), 1.0, 1e-12);
  for (size_t i = 1; i < eps.size(); ++i) {
    EXPECT_NEAR(eps[i] - eps[i - 1], 0.1, 1e-12);
  }
}

TEST(ExperimentTest, RepeatSummarizes) {
  Random rng(1);
  int calls = 0;
  Summary s = Repeat(50, rng, [&calls](Random& r) {
    ++calls;
    return r.Uniform();
  });
  EXPECT_EQ(calls, 50);
  EXPECT_GT(s.mean, 0.2);
  EXPECT_LT(s.mean, 0.8);
  EXPECT_LE(s.lower_quartile, s.mean);
  EXPECT_GE(s.upper_quartile, s.mean);
}

TEST(ExperimentTest, RepeatDeterministicAcrossRuns) {
  Random a(7), b(7);
  Summary sa = Repeat(20, a, [](Random& r) { return r.Laplace(1.0); });
  Summary sb = Repeat(20, b, [](Random& r) { return r.Laplace(1.0); });
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
}

TEST(ExperimentTest, BenchRepsEnvOverride) {
  unsetenv("BLOWFISH_BENCH_REPS");
  EXPECT_EQ(BenchReps(13), 13u);
  setenv("BLOWFISH_BENCH_REPS", "5", 1);
  EXPECT_EQ(BenchReps(13), 5u);
  setenv("BLOWFISH_BENCH_REPS", "garbage", 1);
  EXPECT_EQ(BenchReps(13), 13u);
  unsetenv("BLOWFISH_BENCH_REPS");
}

}  // namespace
}  // namespace blowfish
