#include "core/dataset.h"

#include <gtest/gtest.h>

#include <memory>

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

TEST(DatasetTest, CreateValidatesValues) {
  auto dom = MakeLine(4);
  EXPECT_TRUE(Dataset::Create(dom, {0, 1, 2, 3}).ok());
  EXPECT_FALSE(Dataset::Create(dom, {0, 4}).ok());
}

TEST(DatasetTest, SizeAndAccess) {
  auto dom = MakeLine(4);
  Dataset d = Dataset::Create(dom, {3, 1, 1}).value();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.tuple(0), 3u);
  EXPECT_EQ(d.tuple(2), 1u);
}

TEST(DatasetTest, WithTuple) {
  auto dom = MakeLine(4);
  Dataset d = Dataset::Create(dom, {3, 1, 1}).value();
  Dataset e = d.WithTuple(1, 2).value();
  EXPECT_EQ(e.tuple(1), 2u);
  EXPECT_EQ(d.tuple(1), 1u);  // original untouched
  EXPECT_FALSE(d.WithTuple(5, 0).ok());
  EXPECT_FALSE(d.WithTuple(0, 9).ok());
}

TEST(DatasetTest, CompleteHistogram) {
  auto dom = MakeLine(4);
  Dataset d = Dataset::Create(dom, {0, 0, 2, 3, 3, 3}).value();
  Histogram h = d.CompleteHistogram().value();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_DOUBLE_EQ(h[0], 2.0);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
  EXPECT_DOUBLE_EQ(h[2], 1.0);
  EXPECT_DOUBLE_EQ(h[3], 3.0);
  EXPECT_DOUBLE_EQ(h.Total(), 6.0);
}

TEST(DatasetTest, PartitionedHistogram) {
  auto dom = MakeLine(6);
  Dataset d = Dataset::Create(dom, {0, 1, 2, 3, 4, 5, 5}).value();
  // Two buckets: low {0,1,2}, high {3,4,5}.
  Histogram h = d.PartitionedHistogram(
      [](ValueIndex x) { return x < 3 ? 0 : 1; }, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], 4.0);
}

TEST(DatasetTest, PointsEmbedding) {
  auto dom = std::make_shared<const Domain>(
      Domain::Create({Attribute{"x", 4, 2.0}, Attribute{"y", 4, 1.0}})
          .value());
  Dataset d = Dataset::Create(dom, {dom->Encode({1, 3})}).value();
  auto points = d.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0][0], 2.0);
  EXPECT_DOUBLE_EQ(points[0][1], 3.0);
}

TEST(DatasetTest, EmptyDatasetIsFine) {
  auto dom = MakeLine(4);
  Dataset d = Dataset::Create(dom, {}).value();
  EXPECT_EQ(d.size(), 0u);
  EXPECT_DOUBLE_EQ(d.CompleteHistogram().value().Total(), 0.0);
}

}  // namespace
}  // namespace blowfish
