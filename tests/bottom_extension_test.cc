#include "core/bottom_extension.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/neighbors.h"
#include "core/sensitivity.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

TEST(BottomExtensionTest, ExtendsDomainAndGraph) {
  auto dom = MakeLine(4);
  Policy base = Policy::Line(dom).value();
  BottomExtension ext = ExtendWithBottom(base).value();
  EXPECT_EQ(ext.domain->size(), 5u);
  EXPECT_EQ(ext.bottom, 4u);
  // Original line edges preserved.
  EXPECT_TRUE(ext.policy.graph().Adjacent(0, 1));
  EXPECT_FALSE(ext.policy.graph().Adjacent(0, 2));
  // Every value connected to bottom (presence is secret).
  for (ValueIndex x = 0; x < 4; ++x) {
    EXPECT_TRUE(ext.policy.graph().Adjacent(x, ext.bottom)) << x;
  }
}

TEST(BottomExtensionTest, SelectivePresenceSecrets) {
  auto dom = MakeLine(4);
  Policy base = Policy::Line(dom).value();
  BottomExtension ext = ExtendWithBottom(base, {1, 2}).value();
  EXPECT_TRUE(ext.policy.graph().Adjacent(1, ext.bottom));
  EXPECT_TRUE(ext.policy.graph().Adjacent(2, ext.bottom));
  // Values 0 and 3 have *public* presence: no edge to bottom.
  EXPECT_FALSE(ext.policy.graph().Adjacent(0, ext.bottom));
  EXPECT_FALSE(ext.policy.graph().Adjacent(3, ext.bottom));
  EXPECT_FALSE(ExtendWithBottom(base, {9}).ok());
}

TEST(BottomExtensionTest, FullGraphRecoverUnboundedDp) {
  // Full graph + full presence secrets on the extended domain: every pair
  // of extended values adjacent -> the extended policy is the complete
  // graph, i.e. unbounded DP where add/remove is a single edge step.
  auto dom = MakeLine(3);
  Policy base = Policy::FullDomain(dom).value();
  BottomExtension ext = ExtendWithBottom(base).value();
  for (ValueIndex x = 0; x < 4; ++x) {
    for (ValueIndex y = 0; y < 4; ++y) {
      EXPECT_EQ(ext.policy.graph().Adjacent(x, y), x != y);
    }
  }
}

TEST(BottomExtensionTest, LiftAppendsAbsentTuples) {
  auto dom = MakeLine(4);
  Policy base = Policy::Line(dom).value();
  BottomExtension ext = ExtendWithBottom(base).value();
  Dataset data = Dataset::Create(dom, {0, 2}).value();
  Dataset lifted = LiftWithAbsent(ext, data, 3).value();
  EXPECT_EQ(lifted.size(), 5u);
  EXPECT_EQ(lifted.tuple(0), 0u);
  EXPECT_EQ(lifted.tuple(4), ext.bottom);
  // Wrong base domain rejected.
  auto other = MakeLine(7);
  Dataset wrong = Dataset::Create(other, {0}).value();
  EXPECT_FALSE(LiftWithAbsent(ext, wrong, 1).ok());
}

TEST(BottomExtensionTest, ConstrainedPoliciesRejected) {
  auto dom = MakeLine(4);
  ConstraintSet cs;
  cs.Add(CountQuery("low", [](ValueIndex x) { return x < 2; }));
  Policy p = Policy::Create(dom, std::make_shared<LineGraph>(4),
                            std::move(cs))
                 .value();
  EXPECT_EQ(ExtendWithBottom(p).status().code(),
            StatusCode::kUnimplemented);
}

// Neighbour semantics on the extended domain: an insertion (bot -> x) is
// one edge step, so histogram sensitivity accounts for presence changes.
TEST(BottomExtensionTest, InsertionDeletionAreNeighbors) {
  auto dom = MakeLine(3);
  Policy base = Policy::Line(dom).value();
  BottomExtension ext = ExtendWithBottom(base).value();
  NeighborhoodResult nbrs = EnumerateNeighbors(ext.policy, 2, 1000).value();
  bool saw_presence_flip = false;
  for (const auto& [i, j] : nbrs.neighbor_pairs) {
    for (size_t id = 0; id < 2; ++id) {
      ValueIndex a = nbrs.universe[i].tuple(id);
      ValueIndex b = nbrs.universe[j].tuple(id);
      if (a != b && (a == ext.bottom || b == ext.bottom)) {
        saw_presence_flip = true;
      }
    }
  }
  EXPECT_TRUE(saw_presence_flip);
  // Histogram over the extended domain (bot bucket included) still has
  // sensitivity 2: one tuple's move changes two buckets.
  EXPECT_DOUBLE_EQ(HistogramSensitivity(ext.policy.graph()), 2.0);
}

}  // namespace
}  // namespace blowfish
