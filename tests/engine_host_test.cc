#include "server/engine_host.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <vector>

#include "core/policy.h"
#include "core/secret_graph.h"
#include "engine/batch_request.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 7) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

QueryRequest HistogramRequest(double eps) {
  return MakeQueryRequest("histogram", eps).value();
}

TEST(EngineHostTest, ServesARegisteredTenant) {
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host;
  ASSERT_TRUE(host.AddTenant("p", "d", policy, MakeData(domain, 200)).ok());
  auto responses = host.ServeBatch("p", "d", {HistogramRequest(0.5)});
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 1u);
  EXPECT_TRUE((*responses)[0].status.ok());
  EXPECT_EQ((*responses)[0].values.size(), 32u);
}

TEST(EngineHostTest, UnknownTenantReturnsNotFound) {
  EngineHost host;
  auto responses = host.ServeBatch("nope", "nada", {HistogramRequest(0.5)});
  EXPECT_EQ(responses.status().code(), StatusCode::kNotFound);
}

TEST(EngineHostTest, DuplicateTenantRefused) {
  auto domain = LineDomain(16);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host;
  ASSERT_TRUE(host.AddTenant("p", "d", policy, MakeData(domain, 50)).ok());
  EXPECT_EQ(host.AddTenant("p", "d", policy, MakeData(domain, 50)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(host.HasTenant("p", "d"));
  EXPECT_FALSE(host.HasTenant("p", "other"));
  EXPECT_EQ(host.Tenants().size(), 1u);
}

TEST(EngineHostTest, LazyConstructionErrorSurfacesAtFirstBatch) {
  // Policy and dataset domains disagree; AddTenant accepts the pair
  // (construction is lazy), and the mismatch is reported by the first
  // batch — and every later one.
  auto policy_domain = LineDomain(32);
  auto data_domain = std::make_shared<const Domain>(
      Domain::Line(32, 2.0, "other").value());
  Policy policy = Policy::FullDomain(policy_domain).value();
  EngineHost host;
  ASSERT_TRUE(
      host.AddTenant("p", "d", policy, MakeData(data_domain, 50)).ok());
  auto first = host.ServeBatch("p", "d", {HistogramRequest(0.5)});
  EXPECT_EQ(first.status().code(), StatusCode::kInvalidArgument);
  auto second = host.ServeBatch("p", "d", {HistogramRequest(0.5)});
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineHostTest, TenantBudgetsAreIsolated) {
  auto domain = LineDomain(16);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host;
  TenantOptions small;
  small.default_session_budget = 0.5;
  ASSERT_TRUE(
      host.AddTenant("p", "a", policy, MakeData(domain, 100), small).ok());
  ASSERT_TRUE(
      host.AddTenant("p", "b", policy, MakeData(domain, 100), small).ok());

  // Tenant a spends its whole budget...
  auto first = host.ServeBatch("p", "a", {HistogramRequest(0.5)});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)[0].status.ok()) << (*first)[0].status.ToString();
  auto refused = host.ServeBatch("p", "a", {HistogramRequest(0.5)});
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ((*refused)[0].status.code(), StatusCode::kResourceExhausted);

  // ...and tenant b is untouched.
  auto fresh = host.ServeBatch("p", "b", {HistogramRequest(0.5)});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)[0].status.ok()) << (*fresh)[0].status.ToString();
}

TEST(EngineHostTest, TenantsSharingAPolicyShareSensitivityWork) {
  // Two tenants, same policy shape, different datasets: S(f, P) does not
  // depend on the data, so the second tenant's first query hits the
  // process-wide cache.
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host;
  ASSERT_TRUE(
      host.AddTenant("p", "a", policy, MakeData(domain, 100, 1)).ok());
  ASSERT_TRUE(
      host.AddTenant("p", "b", policy, MakeData(domain, 100, 2)).ok());
  auto first = host.ServeBatch("p", "a", {HistogramRequest(0.2)});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*first)[0].cache_hit);
  auto second = host.ServeBatch("p", "b", {HistogramRequest(0.2)});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)[0].cache_hit);
  const SensitivityCache::Stats stats = host.cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(EngineHostTest, BatchOutputBitIdenticalForAnyPoolSize) {
  auto domain = LineDomain(64);
  Policy policy = Policy::Line(domain).value();

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(HistogramRequest(0.2));
  batch.push_back(
      MakeQueryRequest("range", 0.1, {{"lo", "5"}, {"hi", "50"}}).value());

  std::vector<std::vector<QueryResponse>> runs;
  for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
    EngineHostOptions options;
    options.num_threads = pool_size;
    EngineHost host(options);
    TenantOptions tenant;
    tenant.default_session_budget = 100.0;
    ASSERT_TRUE(host.AddTenant("p", "d", policy, MakeData(domain, 400),
                               tenant)
                    .ok());
    auto responses = host.ServeBatch("p", "d", batch);
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    runs.push_back(std::move(*responses));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_TRUE(runs[0][i].status.ok());
      ASSERT_TRUE(runs[r][i].status.ok());
      EXPECT_EQ(runs[0][i].values, runs[r][i].values)
          << "pool size run " << r << ", query " << i;
    }
  }
}

TEST(EngineHostTest, ExplicitTenantSeedOverridesDerivedSeed) {
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  Dataset data = MakeData(domain, 200);

  // Same explicit seed in two differently-keyed tenants: same noise.
  EngineHost host;
  TenantOptions seeded;
  seeded.root_seed = 123;
  ASSERT_TRUE(host.AddTenant("p", "x", policy, data, seeded).ok());
  ASSERT_TRUE(host.AddTenant("p", "y", policy, data, seeded).ok());
  auto x = host.ServeBatch("p", "x", {HistogramRequest(0.5)});
  auto y = host.ServeBatch("p", "y", {HistogramRequest(0.5)});
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ((*x)[0].values, (*y)[0].values);

  // Derived seeds differ by key: distinct tenants draw distinct noise.
  EngineHost host2;
  ASSERT_TRUE(host2.AddTenant("p", "x", policy, data).ok());
  ASSERT_TRUE(host2.AddTenant("p", "y", policy, data).ok());
  auto dx = host2.ServeBatch("p", "x", {HistogramRequest(0.5)});
  auto dy = host2.ServeBatch("p", "y", {HistogramRequest(0.5)});
  ASSERT_TRUE(dx.ok());
  ASSERT_TRUE(dy.ok());
  EXPECT_NE((*dx)[0].values, (*dy)[0].values);
}

TEST(EngineHostTest, ManyAsyncBatchesInterleaveAndAllComplete) {
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHostOptions options;
  options.num_threads = 4;
  EngineHost host(options);
  constexpr int kTenants = 6;
  constexpr int kBatchesPerTenant = 5;
  TenantOptions tenant;
  tenant.default_session_budget = 1e6;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(host.AddTenant("p", "t" + std::to_string(t), policy,
                               MakeData(domain, 100, 10 + t), tenant)
                    .ok());
  }
  // All batches in flight before any result is collected.
  std::vector<std::future<StatusOr<std::vector<QueryResponse>>>> pending;
  for (int b = 0; b < kBatchesPerTenant; ++b) {
    for (int t = 0; t < kTenants; ++t) {
      pending.push_back(host.SubmitBatch(
          "p", "t" + std::to_string(t),
          {HistogramRequest(0.1), HistogramRequest(0.1)}));
    }
  }
  for (auto& f : pending) {
    auto responses = f.get();
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    for (const QueryResponse& resp : *responses) {
      EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    }
  }
}

TEST(EngineHostTest, ServeBatchFromOwnPoolWorkerDoesNotDeadlock) {
  // A task running on the host's single pool worker calls the
  // synchronous ServeBatch: it must run inline rather than block on a
  // batch queued behind itself.
  auto domain = LineDomain(16);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHostOptions options;
  options.num_threads = 1;
  EngineHost host(options);
  ASSERT_TRUE(host.AddTenant("p", "d", policy, MakeData(domain, 100)).ok());
  auto nested = host.pool().Submit([&host]() {
    return host.ServeBatch("p", "d", {HistogramRequest(0.5)});
  });
  ASSERT_EQ(nested.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "nested ServeBatch deadlocked on the pool";
  auto responses = nested.get();
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_TRUE((*responses)[0].status.ok());
}

TEST(EngineHostTest, NonFiniteTenantBudgetRefusedAtFirstBatch) {
  // A NaN budget would make every admission check pass (spent + eps >
  // NaN is never true); engine construction must refuse it.
  auto domain = LineDomain(16);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host;
  TenantOptions bad;
  bad.default_session_budget = std::nan("");
  ASSERT_TRUE(
      host.AddTenant("p", "d", policy, MakeData(domain, 50), bad).ok());
  auto responses = host.ServeBatch("p", "d", {HistogramRequest(0.5)});
  EXPECT_EQ(responses.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace blowfish
