#include "mech/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"
#include "util/stats.h"

namespace blowfish {
namespace {

Histogram UniformData(size_t domain, size_t total, Random& rng) {
  Histogram h(domain);
  for (size_t i = 0; i < total; ++i) {
    h.Add(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1)));
  }
  return h;
}

TEST(HierarchicalTest, Validation) {
  Random rng(1);
  Histogram data(16);
  HierarchicalOptions opts;
  EXPECT_FALSE(HierarchicalMechanism::Release(data, 0.0, opts, rng).ok());
  EXPECT_TRUE(HierarchicalMechanism::Release(data, 1.0, opts, rng).ok());
}

TEST(HierarchicalTest, SingleBucketDomainIsExact) {
  Random rng(1);
  Histogram data(1);
  data.Add(0, 42);
  HierarchicalOptions opts;
  auto m = HierarchicalMechanism::Release(data, 1.0, opts, rng).value();
  EXPECT_DOUBLE_EQ(m.RangeQuery(0, 0).value(), 42.0);
}

TEST(HierarchicalTest, RangeQueryBounds) {
  Random rng(2);
  Histogram data(32);
  HierarchicalOptions opts;
  auto m = HierarchicalMechanism::Release(data, 1.0, opts, rng).value();
  EXPECT_FALSE(m.RangeQuery(3, 2).ok());
  EXPECT_FALSE(m.RangeQuery(0, 32).ok());
  EXPECT_TRUE(m.RangeQuery(0, 31).ok());
  EXPECT_FALSE(m.CumulativeCount(32).ok());
}

TEST(HierarchicalTest, RangeQueriesAreUnbiasedAndReasonablyAccurate) {
  Random data_rng(3);
  Histogram data = UniformData(256, 5000, data_rng);
  HierarchicalOptions opts;
  opts.fanout = 16;
  const double eps = 1.0;
  Random rng(5);
  std::vector<double> errors;
  double truth = data.RangeSum(20, 200).value();
  for (int rep = 0; rep < 300; ++rep) {
    auto m = HierarchicalMechanism::Release(data, eps, opts, rng).value();
    errors.push_back(m.RangeQuery(20, 200).value() - truth);
  }
  EXPECT_NEAR(Mean(errors), 0.0, 3.0);
  // Error should be in the ballpark of log^3|T|/eps^2, far below naive
  // per-bucket summation of 181 buckets at 2/eps^2 each... just sanity.
  double mse = 0.0;
  for (double e : errors) mse += e * e;
  mse /= errors.size();
  EXPECT_LT(mse, 500.0);
}

TEST(HierarchicalTest, ConsistencyReducesError) {
  Random data_rng(7);
  Histogram data = UniformData(256, 3000, data_rng);
  HierarchicalOptions raw_opts{/*fanout=*/16, /*consistency=*/false};
  HierarchicalOptions inf_opts{/*fanout=*/16, /*consistency=*/true};
  const double eps = 0.3;
  Random rng(9);
  double raw_mse = 0.0, inf_mse = 0.0;
  double truth = data.RangeSum(10, 180).value();
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    auto raw = HierarchicalMechanism::Release(data, eps, raw_opts, rng)
                   .value();
    auto inf = HierarchicalMechanism::Release(data, eps, inf_opts, rng)
                   .value();
    double er = raw.RangeQuery(10, 180).value() - truth;
    double ei = inf.RangeQuery(10, 180).value() - truth;
    raw_mse += er * er;
    inf_mse += ei * ei;
  }
  EXPECT_LT(inf_mse, raw_mse);
}

TEST(HierarchicalTest, CumulativeMatchesRange) {
  Random rng(11);
  Histogram data = UniformData(64, 500, rng);
  HierarchicalOptions opts;
  auto m = HierarchicalMechanism::Release(data, 1.0, opts, rng).value();
  for (size_t j : {0ul, 5ul, 31ul, 63ul}) {
    EXPECT_NEAR(m.CumulativeCount(j).value(), m.RangeQuery(0, j).value(),
                1e-9);
  }
}

TEST(HierarchicalTest, GeometricBudgetRuns) {
  Random rng(13);
  Histogram data = UniformData(256, 2000, rng);
  HierarchicalOptions opts;
  opts.fanout = 4;
  opts.budget = BudgetSplit::kGeometric;
  auto m = HierarchicalMechanism::Release(data, 1.0, opts, rng).value();
  EXPECT_TRUE(m.RangeQuery(0, 255).ok());
}

// Geometric budgeting must still satisfy the privacy budget: for any
// single-tuple move, the sum over levels of (2 nodes changed) * eps_l
// equals sum eps_l = eps regardless of the split. Verify the split sums
// to eps by reconstructing the level budgets from the noise calibration.
TEST(HierarchicalTest, GeometricBudgetSumsToEpsilon) {
  const size_t h = 4;  // levels below the root
  const double eps = 0.9;
  double total_weight = 0.0;
  for (size_t l = 1; l <= h; ++l) {
    total_weight += std::pow(2.0, static_cast<double>(l) / 3.0);
  }
  double total = 0.0;
  for (size_t l = 1; l <= h; ++l) {
    total += eps * std::pow(2.0, static_cast<double>(l) / 3.0) /
             total_weight;
  }
  EXPECT_NEAR(total, eps, 1e-12);
}

// On leaf-heavy workloads (short ranges) geometric budgeting should not
// be worse than uniform by much, and typically helps.
TEST(HierarchicalTest, GeometricHelpsShortRanges) {
  Random data_rng(17);
  Histogram data = UniformData(1024, 20000, data_rng);
  const double eps = 0.4;
  Random rng(19);
  auto mse_for = [&](BudgetSplit budget) {
    HierarchicalOptions opts;
    opts.fanout = 16;
    opts.consistency = false;
    opts.budget = budget;
    double mse = 0.0;
    const int reps = 150;
    for (int rep = 0; rep < reps; ++rep) {
      auto m = HierarchicalMechanism::Release(data, eps, opts, rng).value();
      for (size_t lo : {10ul, 300ul, 700ul}) {
        double truth = data.RangeSum(lo, lo + 12).value();
        double e = m.RangeQuery(lo, lo + 12).value() - truth;
        mse += e * e;
      }
    }
    return mse;
  };
  double uniform = mse_for(BudgetSplit::kUniform);
  double geometric = mse_for(BudgetSplit::kGeometric);
  EXPECT_LT(geometric, uniform * 1.1);
}

TEST(HierarchicalTest, ErrorEstimateFormula) {
  // log_16(4096) = 3 -> 27/eps^2.
  EXPECT_NEAR(HierarchicalMechanism::RangeErrorEstimate(4096, 16, 1.0), 27.0,
              1e-9);
}

}  // namespace
}  // namespace blowfish
