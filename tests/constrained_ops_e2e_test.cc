// End-to-end serving of constrained policies for the parallel /
// value-weighted query family: batch-file round-trips of
// `cell_histogram` (as a parallel group), `mean`, and `wavelet_range`
// through ReleaseEngine and EngineHost on two constrained fixtures,
// asserting
//  * bit-identical payloads across pool sizes {0, 1, 8} (the noise a
//    query draws is a function of admission order, never scheduling),
//  * correct budget accounting: the parallel group is charged once at
//    max(eps) — a per-member charge would overrun the exactly-sized
//    budget below — and both members are noised at the shared
//    union-cells sensitivity,
//  * the formerly refused ops (kmeans, the ordered S_T family) now
//    serve pinned policies through the cumulative-histogram /
//    move-norm chain bounds, and the one documented holdout
//    (hier_range, whose per-node budget split has no per-move distance
//    bound under chains) refuses with a structured status naming the
//    refusing op and the refused policy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/policy.h"
#include "core/secret_graph.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "server/engine_host.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 11) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

/// Fixture A: Line(8) split into G^P cells {0..3} / {4..7}, one count
/// constraint #(x < 2) pinned from the dataset. Critical only in cell 0.
Policy FixtureA(const std::shared_ptr<const Domain>& domain,
                const Dataset& data) {
  auto part = PartitionGraph::UniformGrid(domain, {2}).value();
  ConstraintSet cs;
  CountQuery low("low", [](ValueIndex x) { return x < 2; });
  const uint64_t answer = low.Evaluate(data);
  cs.AddWithAnswer(std::move(low), answer);
  return Policy::Create(domain,
                        std::shared_ptr<const SecretGraph>(part.release()),
                        std::move(cs))
      .value();
}

/// Fixture B: Line(16) split into four G^P cells of four values, two
/// disjoint-interval count constraints pinned from the dataset
/// (disjoint supports keep the all-pairs Def 8.2 sparsity: no single
/// move can lift or lower both). Critical in cells 0 and 2.
Policy FixtureB(const std::shared_ptr<const Domain>& domain,
                const Dataset& data) {
  auto part = PartitionGraph::UniformGrid(domain, {4}).value();
  ConstraintSet cs;
  CountQuery lo("lo", [](ValueIndex x) { return x >= 1 && x <= 2; });
  CountQuery hi("hi", [](ValueIndex x) { return x >= 9 && x <= 10; });
  const uint64_t lo_answer = lo.Evaluate(data);
  const uint64_t hi_answer = hi.Evaluate(data);
  cs.AddWithAnswer(std::move(lo), lo_answer);
  cs.AddWithAnswer(std::move(hi), hi_answer);
  return Policy::Create(domain,
                        std::shared_ptr<const SecretGraph>(part.release()),
                        std::move(cs))
      .value();
}

/// The batch under test, as a batch file. Epsilons are powers of two so
/// the exact budget arithmetic below has no rounding slack: the group
/// costs max(0.25, 0.125) = 0.25, the whole batch exactly 1.0.
constexpr char kBatchText[] =
    "cell_histogram eps=0.25 cells=0 group=g label=cells0\n"
    "cell_histogram eps=0.125 cells=1 group=g label=cells1\n"
    "mean eps=0.25\n"
    "wavelet_range eps=0.25 lo=1 hi=5\n"
    "histogram eps=0.25\n";

std::vector<QueryRequest> ParseBatch() {
  auto requests = ParseBatchRequests(kBatchText);
  EXPECT_TRUE(requests.ok()) << requests.status().ToString();
  return std::move(*requests);
}

std::unique_ptr<ReleaseEngine> MakeEngine(
    const Policy& policy, const Dataset& data,
    std::shared_ptr<ThreadPool> pool = nullptr) {
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 1.0;
  if (pool != nullptr) options.pool = std::move(pool);
  auto engine = ReleaseEngine::Create(policy, data, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

struct Fixture {
  std::string name;
  Policy policy;
  Dataset data;
};

std::vector<Fixture> Fixtures() {
  std::vector<Fixture> out;
  {
    auto domain = LineDomain(8);
    Dataset data = MakeData(domain, 120);
    Policy policy = FixtureA(domain, data);
    out.push_back(Fixture{"A", std::move(policy), std::move(data)});
  }
  {
    auto domain = LineDomain(16);
    Dataset data = MakeData(domain, 200, 13);
    Policy policy = FixtureB(domain, data);
    out.push_back(Fixture{"B", std::move(policy), std::move(data)});
  }
  return out;
}

TEST(ConstrainedOpsE2ETest, EngineServesBatchPoolSizeInvariant) {
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    auto reference_engine = MakeEngine(f.policy, f.data);
    const std::vector<QueryRequest> batch = ParseBatch();
    const std::vector<QueryResponse> reference =
        reference_engine->ServeBatch(batch);
    ASSERT_EQ(reference.size(), 5u);
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(reference[i].status.ok())
          << "query " << i << ": " << reference[i].status.ToString();
      EXPECT_FALSE(reference[i].values.empty()) << "query " << i;
      EXPECT_GT(reference[i].sensitivity, 0.0) << "query " << i;
    }
    // Both parallel members carry the shared union-cells sensitivity.
    EXPECT_DOUBLE_EQ(reference[0].sensitivity, reference[1].sensitivity);

    // The whole batch costs exactly the session budget: 0.25 (group
    // max, charged once) + 0.25 + 0.25 + 0.25. A per-member group
    // charge (0.375) would have refused the last query.
    EXPECT_DOUBLE_EQ(reference_engine->accountant().Spent(""), 1.0);
    // The one group charge is attributed to the most expensive member.
    EXPECT_DOUBLE_EQ(reference[0].receipt.charged, 0.25);
    EXPECT_DOUBLE_EQ(reference[1].receipt.charged, 0.0);

    for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
      auto engine =
          MakeEngine(f.policy, f.data,
                     std::make_shared<ThreadPool>(pool_size));
      const std::vector<QueryResponse> responses =
          engine->ServeBatch(ParseBatch());
      ASSERT_EQ(responses.size(), reference.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].status.code(), reference[i].status.code())
            << "pool " << pool_size << " query " << i;
        EXPECT_EQ(responses[i].values, reference[i].values)
            << "pool " << pool_size << " query " << i;
        EXPECT_DOUBLE_EQ(responses[i].sensitivity,
                         reference[i].sensitivity)
            << "pool " << pool_size << " query " << i;
      }
    }
  }
}

TEST(ConstrainedOpsE2ETest, HostServesBatchPoolSizeInvariant) {
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    std::vector<std::vector<QueryResponse>> runs;
    for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
      EngineHostOptions host_options;
      host_options.num_threads = pool_size;
      EngineHost host(host_options);
      TenantOptions tenant;
      tenant.default_session_budget = 1.0;
      ASSERT_TRUE(host.AddTenant("p", "d", f.policy, f.data, tenant).ok());
      auto responses = host.ServeBatch("p", "d", ParseBatch());
      ASSERT_TRUE(responses.ok()) << responses.status().ToString();
      ASSERT_EQ(responses->size(), 5u);
      for (size_t i = 0; i < responses->size(); ++i) {
        ASSERT_TRUE((*responses)[i].status.ok())
            << "pool " << pool_size << " query " << i << ": "
            << (*responses)[i].status.ToString();
      }
      // The batch consumed the whole tenant budget in one parallel-aware
      // charge; the cheapest further query is refused.
      auto refused = host.ServeBatch(
          "p", "d", {MakeQueryRequest("histogram", 0.125).value()});
      ASSERT_TRUE(refused.ok());
      EXPECT_EQ((*refused)[0].status.code(),
                StatusCode::kResourceExhausted)
          << "pool " << pool_size;
      runs.push_back(std::move(*responses));
    }
    for (size_t r = 1; r < runs.size(); ++r) {
      for (size_t i = 0; i < runs[r].size(); ++i) {
        EXPECT_EQ(runs[r][i].values, runs[0][i].values)
            << "run " << r << " query " << i;
      }
    }
  }
}

TEST(ConstrainedOpsE2ETest, UnconstrainedResultsUnchangedByConstrainedPath) {
  // The same batch against the same data under the UNCONSTRAINED twin
  // of fixture A exercises the legacy code paths: per-member group
  // sensitivities (cell 1 has S = 2, not the union's), and the wavelet
  // epsilon scale factor 1. This guards the acceptance criterion that
  // previously-passing unconstrained results stay bit-identical: the
  // constrained machinery must be invisible when no constraint is
  // pinned.
  auto domain = LineDomain(8);
  Dataset data = MakeData(domain, 120);
  auto part = PartitionGraph::UniformGrid(domain, {2}).value();
  Policy unconstrained =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part.release()))
          .value();
  auto engine = MakeEngine(unconstrained, data);
  const std::vector<QueryResponse> responses =
      engine->ServeBatch(ParseBatch());
  ASSERT_EQ(responses.size(), 5u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << "query " << i << ": " << responses[i].status.ToString();
  }
  // Per-member scales, not the shared union scale.
  EXPECT_DOUBLE_EQ(responses[0].sensitivity, 2.0);
  EXPECT_DOUBLE_EQ(responses[1].sensitivity, 2.0);

  // An UNPINNED constraint set restricts nothing (SatisfiedBy ignores
  // queries without answers), so it must behave exactly like the
  // unconstrained policy: same admissions, same scales, and — with the
  // same root seed — bit-identical noise.
  auto part2 = PartitionGraph::UniformGrid(domain, {2}).value();
  ConstraintSet unpinned;
  unpinned.Add(CountQuery("low", [](ValueIndex x) { return x < 2; }));
  Policy inert =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part2.release()),
                     std::move(unpinned))
          .value();
  auto inert_engine = MakeEngine(inert, data);
  const std::vector<QueryResponse> inert_responses =
      inert_engine->ServeBatch(ParseBatch());
  ASSERT_EQ(inert_responses.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(inert_responses[i].status.code(), responses[i].status.code())
        << "query " << i;
    EXPECT_EQ(inert_responses[i].values, responses[i].values)
        << "query " << i;
    EXPECT_DOUBLE_EQ(inert_responses[i].sensitivity,
                     responses[i].sensitivity)
        << "query " << i;
  }
}

TEST(ConstrainedOpsE2ETest, ZeroEpsilonMemberRefusedAtUnionScale) {
  // Cell 2 is a singleton {6} with no G^P edge inside, and the pinned
  // constraint is CONSTANT (it counts every tuple) so no move ever
  // crosses it: the member's own sensitivity is exactly 0 and admission
  // pass 1 accepts eps=0 as a free exact release. (Any crossable pinned
  // query would already give the singleton cell a positive own
  // sensitivity — a compensating move can land there — and pass 1 would
  // refuse eps=0 itself.) But the group is noised at the shared
  // union-cells scale, which is positive via cell 0's free in-cell
  // moves, so the zero-epsilon member must be refused at admission, as
  // a group, with nothing charged — not admitted, charged, and then
  // failed inside Execute.
  auto domain = LineDomain(7);
  Dataset data = MakeData(domain, 80);
  const std::vector<uint64_t> cell_of{0, 0, 0, 0, 1, 1, 2};
  auto part = std::make_shared<const PartitionGraph>(
      cell_of.size(), [cell_of](ValueIndex x) { return cell_of[x]; },
      "partition|e2e");
  ConstraintSet cs;
  cs.AddWithAnswer(CountQuery("all", [](ValueIndex) { return true; }),
                   data.size());
  Policy policy = Policy::Create(domain, part, std::move(cs)).value();
  auto engine = MakeEngine(policy, data);
  const std::vector<QueryResponse> responses = engine->ServeBatch(
      {MakeQueryRequest("cell_histogram", 0.25,
                        {{"cells", "0"}, {"group", "g"}})
           .value(),
       MakeQueryRequest("cell_histogram", 0.0,
                        {{"cells", "2"}, {"group", "g"}})
           .value()});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(responses[1].status.message().find("union-cells"),
            std::string::npos)
      << responses[1].status.message();
  EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.0);
}

TEST(ConstrainedOpsE2ETest, FormerlyRefusedOpsNowServePinnedPolicies) {
  // kmeans and the ordered S_T family used to refuse every constrained
  // policy; both now route their linear queries through the weighted
  // Thm 8.2 chain bound (q_sum/q_size move norms, the cumulative
  // histogram) and serve pinned fixtures end to end.
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    auto engine = MakeEngine(f.policy, f.data);
    const std::vector<QueryResponse> responses = engine->ServeBatch(
        {MakeQueryRequest("kmeans", 0.25, {{"k", "2"}}).value(),
         MakeQueryRequest("range", 0.25, {{"lo", "0"}, {"hi", "3"}}).value(),
         MakeQueryRequest("cdf", 0.125).value(),
         MakeQueryRequest("quantiles", 0.125, {{"qs", "0.25,0.75"}})
             .value()});
    ASSERT_EQ(responses.size(), 4u);
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok())
          << "query " << i << ": " << responses[i].status.ToString();
      EXPECT_FALSE(responses[i].values.empty()) << "query " << i;
      EXPECT_GT(responses[i].sensitivity, 0.0) << "query " << i;
    }
    // Everything was admitted and charged.
    EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.75);
  }
}

TEST(ConstrainedOpsE2ETest, HierRangeRefusesWithStructuredStatus) {
  // hier_range is the one documented constrained holdout: the ordered
  // hierarchical mechanism splits its budget per tree node assuming a
  // per-move distance bound, which Thm 8.2 chains do not provide.
  // Constrained callers are routed to `range` instead; the refusal
  // must be structured — naming the op and the refused policy — and
  // must charge nothing.
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    auto engine = MakeEngine(f.policy, f.data);
    const std::vector<QueryResponse> responses = engine->ServeBatch(
        {MakeQueryRequest("hier_range", 0.25, {{"lo", "0"}, {"hi", "3"}})
             .value()});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status.code(), StatusCode::kUnimplemented);
    EXPECT_NE(responses[0].status.message().find("op 'hier_range'"),
              std::string::npos)
        << responses[0].status.message();
    EXPECT_NE(responses[0].status.message().find("constrained policies"),
              std::string::npos);
    EXPECT_NE(responses[0].status.message().find("partition"),
              std::string::npos)
        << "refusal must name the policy's secret graph: "
        << responses[0].status.message();
    // Nothing was charged for the refused query.
    EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.0);
  }
}

TEST(ConstrainedOpsE2ETest, StraddlingGroupRefusedCoherentGroupServed) {
  // Fixture B's constraint "lo" is critical in cell 0 and "hi" in cell
  // 2 (two singleton coupled components). A group splitting cells
  // {0, 1} / {2, 3} keeps each component inside one member and is
  // served; a group splitting {0, 2} / {1, 3} cannot be refused on
  // component grounds — each component still touches one member — but
  // one pairing two critical cells of ONE constraint across members
  // requires a straddling constraint. Build one: a single interval
  // spanning cells 0 and 1 couples them into one component, and the
  // {0} / {1} grouping is refused.
  auto domain = LineDomain(16);
  Dataset data = MakeData(domain, 200, 13);
  Policy policy = FixtureB(domain, data);
  auto engine = MakeEngine(policy, data);
  auto ok_responses = engine->ServeBatch(ParseBatchRequests(
      "cell_histogram eps=0.125 cells=0,1 group=g\n"
      "cell_histogram eps=0.125 cells=2,3 group=g\n").value());
  ASSERT_EQ(ok_responses.size(), 2u);
  EXPECT_TRUE(ok_responses[0].status.ok())
      << ok_responses[0].status.ToString();
  EXPECT_TRUE(ok_responses[1].status.ok());

  auto part = PartitionGraph::UniformGrid(domain, {4}).value();
  ConstraintSet straddling;
  CountQuery wide("wide", [](ValueIndex x) { return x >= 3 && x <= 4; });
  const uint64_t answer = wide.Evaluate(data);
  straddling.AddWithAnswer(std::move(wide), answer);
  Policy coupled =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part.release()),
                     std::move(straddling))
          .value();
  auto coupled_engine = MakeEngine(coupled, data);
  auto refused = coupled_engine->ServeBatch(ParseBatchRequests(
      "cell_histogram eps=0.125 cells=0 group=g\n"
      "cell_histogram eps=0.125 cells=1 group=g\n").value());
  ASSERT_EQ(refused.size(), 2u);
  EXPECT_EQ(refused[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused[0].status.message().find("couple cells"),
            std::string::npos)
      << refused[0].status.message();
  // The refused group charged nothing.
  EXPECT_DOUBLE_EQ(coupled_engine->accountant().Spent(""), 0.0);
}

}  // namespace
}  // namespace blowfish
