// Budget-ledger persistence (BudgetAccountant::Save/Load) and the
// advisory file lock guarding shared save paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy.h"
#include "engine/batch_request.h"
#include "engine/budget_accountant.h"
#include "engine/release_engine.h"
#include "util/file_lock.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "blowfish_" + name + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

TEST(BudgetLedgerTest, SaveLoadRoundTripIsExact) {
  BudgetAccountant original(10.0);
  ASSERT_TRUE(original.OpenSession("alice", 2.5).ok());
  ASSERT_TRUE(original.OpenSession("bob", 1.0).ok());
  ASSERT_TRUE(original.ChargeSequential("alice", 0.7).ok());
  ASSERT_TRUE(original.ChargeSequential("", 0.123456789012345).ok());

  std::ostringstream out;
  ASSERT_TRUE(original.Save(out).ok());
  BudgetAccountant restored(10.0);
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Load(in).ok());

  const auto before = original.ListSessions();
  const auto after = restored.ListSessions();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].name, after[i].name);
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(before[i].budget, after[i].budget);
    EXPECT_EQ(before[i].spent, after[i].spent);
  }
}

TEST(BudgetLedgerTest, LoadedSpendIsEnforced) {
  // The point of persistence: a restarted process must refuse what the
  // previous process could no longer afford.
  BudgetAccountant first(1.0);
  ASSERT_TRUE(first.ChargeSequential("", 0.8).ok());
  std::ostringstream out;
  ASSERT_TRUE(first.Save(out).ok());

  BudgetAccountant second(1.0);
  std::istringstream in(out.str());
  ASSERT_TRUE(second.Load(in).ok());
  EXPECT_DOUBLE_EQ(second.Spent(""), 0.8);
  EXPECT_EQ(second.ChargeSequential("", 0.5).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(second.ChargeSequential("", 0.2).ok());
}

TEST(BudgetLedgerTest, LoadReplacesExistingSessions) {
  BudgetAccountant saved(10.0);
  ASSERT_TRUE(saved.OpenSession("alice", 5.0).ok());
  ASSERT_TRUE(saved.ChargeSequential("alice", 1.5).ok());
  std::ostringstream out;
  ASSERT_TRUE(saved.Save(out).ok());

  BudgetAccountant target(10.0);
  ASSERT_TRUE(target.OpenSession("alice", 2.0).ok());  // opening balance
  std::istringstream in(out.str());
  ASSERT_TRUE(target.Load(in).ok());
  // The ledger file is the authority: budget and spend both replaced.
  EXPECT_DOUBLE_EQ(target.Spent("alice"), 1.5);
  EXPECT_DOUBLE_EQ(target.Remaining("alice"), 3.5);
  // Idempotent: loading the same ledger again changes nothing.
  std::istringstream again(out.str());
  ASSERT_TRUE(target.Load(again).ok());
  EXPECT_DOUBLE_EQ(target.Spent("alice"), 1.5);
}

TEST(BudgetLedgerTest, MalformedFilesRejectedWithoutSideEffects) {
  BudgetAccountant accountant(10.0);
  ASSERT_TRUE(accountant.ChargeSequential("keep", 0.25).ok());
  for (const char* bad :
       {"",                                        // no header
        "# wrong header\n1\t0\tx\n",               // bad header
        "# blowfish-budget-ledger v1\ngarbage\n",  // no tabs
        "# blowfish-budget-ledger v1\n1\tx\ts\n",  // non-numeric spent
        "# blowfish-budget-ledger v1\n1\t-2\ts\n",  // negative spent
        "# blowfish-budget-ledger v1\nnan\t0\ts\n"}) {
    std::istringstream in(bad);
    EXPECT_FALSE(accountant.Load(in).ok()) << "'" << bad << "'";
  }
  // Nothing was half-merged.
  EXPECT_EQ(accountant.ListSessions().size(), 1u);
  EXPECT_DOUBLE_EQ(accountant.Spent("keep"), 0.25);
}

TEST(BudgetLedgerTest, FileRoundTripAcrossEngines) {
  // Simulates two serving processes sharing one ledger file: the first
  // engine's spend constrains the second engine.
  const std::string path = TempPath("ledger");
  auto domain =
      std::make_shared<const Domain>(Domain::Line(16).value());
  Policy policy = Policy::FullDomain(domain).value();
  Random rng(7);
  std::vector<ValueIndex> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.push_back(static_cast<ValueIndex>(rng.UniformInt(0, 15)));
  }
  Dataset data = Dataset::Create(domain, std::move(tuples)).value();

  ReleaseEngineOptions options;
  options.default_session_budget = 1.0;
  {
    auto first = ReleaseEngine::Create(policy, data, options);
    ASSERT_TRUE(first.ok());
    auto responses =
        (*first)->ServeBatch({MakeQueryRequest("histogram", 0.9).value()});
    ASSERT_TRUE(responses[0].status.ok());
    ASSERT_TRUE((*first)->accountant().SaveToFile(path).ok());
  }
  {
    auto second = ReleaseEngine::Create(policy, data, options);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE((*second)->accountant().LoadFromFile(path).ok());
    EXPECT_DOUBLE_EQ((*second)->accountant().Spent(""), 0.9);
    // 0.9 of the 1.0 budget is gone across processes.
    auto refused =
        (*second)->ServeBatch({MakeQueryRequest("histogram", 0.5).value()});
    EXPECT_EQ(refused[0].status.code(), StatusCode::kResourceExhausted);
  }
  std::remove(path.c_str());
  EXPECT_EQ(BudgetAccountant(1.0).LoadFromFile(path).code(),
            StatusCode::kNotFound);
}

TEST(FileLockTest, ExcludesSecondAcquirerUntilReleased) {
  const std::string path = TempPath("locktarget");
  auto lock = FileLock::Acquire(path, 500);
  ASSERT_TRUE(lock.ok()) << lock.status().ToString();
  // A live owner (this process) blocks a second acquire past timeout.
  auto contender = FileLock::Acquire(path, 50);
  EXPECT_EQ(contender.status().code(), StatusCode::kResourceExhausted);
  lock->Release();
  auto after = FileLock::Acquire(path, 500);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(FileLockTest, LockFileFromCrashedOwnerIsFreeImmediately) {
  // A crashed process leaves its lock *file* behind but the kernel
  // dropped its flock, so the next acquirer proceeds at once — no
  // stale-pid judgement (and no unlink race) involved.
  const std::string path = TempPath("stalelock");
  {
    std::ofstream forged(path + ".lock");
    forged << "999999999\n";
  }
  auto lock = FileLock::Acquire(path, 500);
  EXPECT_TRUE(lock.ok()) << lock.status().ToString();
}

TEST(FileLockTest, GarbledLockFileIsStillJustALockFile) {
  // The pid stamp is diagnostic only; garbage content cannot wedge the
  // lock because exclusion is the flock, not the file contents.
  const std::string path = TempPath("garbledlock");
  {
    std::ofstream forged(path + ".lock");
    forged << "not-a-pid";
  }
  auto lock = FileLock::Acquire(path, 500);
  EXPECT_TRUE(lock.ok()) << lock.status().ToString();
}

TEST(BudgetLedgerTest, SaveMergesConcurrentProcessesSessions) {
  // Two hosts share one ledger file and charge *disjoint* sessions;
  // the second save must keep the first host's session instead of
  // overwriting the file with only its own view.
  const std::string path = TempPath("mergeledger");
  std::remove(path.c_str());
  BudgetAccountant host_a(10.0);
  ASSERT_TRUE(host_a.ChargeSequential("alice", 0.4).ok());
  BudgetAccountant host_b(10.0);
  ASSERT_TRUE(host_b.ChargeSequential("bob", 0.9).ok());
  ASSERT_TRUE(host_a.SaveToFile(path).ok());
  ASSERT_TRUE(host_b.SaveToFile(path).ok());

  BudgetAccountant combined(10.0);
  ASSERT_TRUE(combined.LoadFromFile(path).ok());
  EXPECT_DOUBLE_EQ(combined.Spent("alice"), 0.4);
  EXPECT_DOUBLE_EQ(combined.Spent("bob"), 0.9);

  // Same-name sessions keep the larger spent: persisted spend never
  // decreases when a host with a shorter history saves later.
  BudgetAccountant stale(10.0);
  ASSERT_TRUE(stale.ChargeSequential("bob", 0.1).ok());
  ASSERT_TRUE(stale.SaveToFile(path).ok());
  BudgetAccountant after(10.0);
  ASSERT_TRUE(after.LoadFromFile(path).ok());
  EXPECT_DOUBLE_EQ(after.Spent("bob"), 0.9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace blowfish
