// End-to-end wire-protocol battery: an in-process blowfish_serverd
// (net/server.h, the daemon's guts) on an ephemeral port, driven by
// BlowfishClient (net/client.h), against the same EngineHost
// configuration served in-process. Asserts:
//
//  * bit-identical equivalence: for pool sizes {0, 1, 8}, every field
//    of every wire response — payload doubles, status, sensitivity,
//    receipts — equals the in-process SubmitBatch future's, byte for
//    byte (%.17g round-trips IEEE doubles exactly);
//  * streamed RESULT frames carry the final payloads and arrive in
//    completion-callback order (pinned observable on a zero-worker
//    host, where completion order is request order);
//  * multi-client soak: 8 concurrent clients x 5 batches across two
//    tenants, exact budget arithmetic per session afterwards;
//  * failure-path refunds over the wire: a client killed mid-batch
//    leaves the tenant's BudgetAccountant at exactly the clean-run
//    spend (the receipt settle/refund protocol never hears about the
//    socket), including a query that fails after admission and
//    refunds;
//  * protocol errors are structured ERR frames, never crashes.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "engine/ops/query_op.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "obs/audit.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/audit_replay.h"
#include "server/engine_host.h"
#include "util/random.h"
#include "util/socket.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;
constexpr char kPolicyId[] = "p";
constexpr char kTenantA[] = "alpha";
constexpr char kTenantB[] = "beta";

/// A query kind that always fails *after* admission — registered only
/// in this test binary (one more proof the registry is open): its
/// charge must be refunded, and the refund must cross the wire in the
/// RECEIPT frames.
class AlwaysFailOp final : public QueryOp {
 public:
  std::string KindName() const override { return "always_fail"; }
  Status Parse(KeyValueBag&) override { return Status::OK(); }
  StatusOr<std::string> SensitivityShape() const override {
    return std::string("always_fail");
  }
  StatusOr<double> ComputeSensitivity(
      const Policy&, const SensitivityEnv&) const override {
    return 1.0;
  }
  StatusOr<std::vector<double>> Execute(const QueryExecContext&,
                                        Random) const override {
    return Status::Internal("injected mid-batch failure");
  }
};

const QueryOpRegistrar kFailRegistrar{
    "always_fail", [] { return std::make_unique<AlwaysFailOp>(); }};

/// A query kind whose Execute blocks on a test-controlled gate. The
/// client-death test closes the gate, kills the client after the first
/// streamed RESULT, then opens it — so the connection is provably dead
/// *before* the batch barrier, deterministically, with no sleeps.
std::mutex g_gate_mu;
std::condition_variable g_gate_cv;
bool g_gate_open = true;

void SetGate(bool open) {
  {
    std::lock_guard<std::mutex> lock(g_gate_mu);
    g_gate_open = open;
  }
  g_gate_cv.notify_all();
}

class SlowGateOp final : public QueryOp {
 public:
  std::string KindName() const override { return "slow_gate"; }
  Status Parse(KeyValueBag&) override { return Status::OK(); }
  StatusOr<std::string> SensitivityShape() const override {
    return std::string("slow_gate");
  }
  StatusOr<double> ComputeSensitivity(
      const Policy&, const SensitivityEnv&) const override {
    return 1.0;
  }
  StatusOr<std::vector<double>> Execute(const QueryExecContext&,
                                        Random) const override {
    std::unique_lock<std::mutex> lock(g_gate_mu);
    g_gate_cv.wait(lock, []() { return g_gate_open; });
    return std::vector<double>{0.0};
  }
};

const QueryOpRegistrar kGateRegistrar{
    "slow_gate", [] { return std::make_unique<SlowGateOp>(); }};

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

/// Two tenants sharing one policy shape over different datasets — the
/// shared-sensitivity-cache configuration of docs/server.md. `metrics`,
/// `tracer`, and `audit`, when set, wire the host into a test-local
/// registry / span writer / audit sink (nullptr = the process-wide
/// defaults, like production).
std::unique_ptr<EngineHost> MakeHost(size_t pool_threads,
                                     obs::MetricsRegistry* metrics = nullptr,
                                     obs::TraceWriter* tracer = nullptr,
                                     obs::AuditLog* audit = nullptr) {
  EngineHostOptions options;
  options.num_threads = pool_threads;
  options.root_seed = kSeed;
  options.metrics = metrics;
  options.tracer = tracer;
  options.audit = audit;
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  auto host = std::make_unique<EngineHost>(options);
  EXPECT_TRUE(
      host->AddTenant(kPolicyId, kTenantA, policy, MakeData(domain, 300, 3))
          .ok());
  EXPECT_TRUE(
      host->AddTenant(kPolicyId, kTenantB, policy, MakeData(domain, 200, 5))
          .ok());
  return host;
}

constexpr char kBatchText[] =
    "histogram eps=0.25 label=h\n"
    "mean eps=0.125 label=m session=s1\n"
    "range eps=0.25 lo=2 hi=9 label=r\n"
    "quantiles eps=0.125 qs=0.25,0.5 label=q\n";

void ExpectResponsesEqual(const std::vector<QueryResponse>& wire,
                          const std::vector<QueryResponse>& local,
                          const std::string& context) {
  ASSERT_EQ(wire.size(), local.size()) << context;
  for (size_t i = 0; i < wire.size(); ++i) {
    SCOPED_TRACE(context + ", query " + std::to_string(i));
    EXPECT_EQ(wire[i].status.code(), local[i].status.code());
    EXPECT_EQ(wire[i].status.message(), local[i].status.message());
    EXPECT_EQ(wire[i].label, local[i].label);
    EXPECT_EQ(wire[i].sensitivity, local[i].sensitivity);
    EXPECT_EQ(wire[i].cache_hit, local[i].cache_hit);
    ASSERT_EQ(wire[i].values.size(), local[i].values.size());
    for (size_t v = 0; v < wire[i].values.size(); ++v) {
      // Exact equality: the wire must not perturb a single bit.
      EXPECT_EQ(wire[i].values[v], local[i].values[v]) << "value " << v;
    }
    EXPECT_EQ(wire[i].receipt.session, local[i].receipt.session);
    EXPECT_EQ(wire[i].receipt.label, local[i].receipt.label);
    EXPECT_EQ(wire[i].receipt.charge_id, local[i].receipt.charge_id);
    EXPECT_EQ(wire[i].receipt.charged, local[i].receipt.charged);
    EXPECT_EQ(wire[i].receipt.epsilon, local[i].receipt.epsilon);
    EXPECT_EQ(wire[i].receipt.remaining, local[i].receipt.remaining);
    EXPECT_EQ(wire[i].receipt.parallel, local[i].receipt.parallel);
    EXPECT_EQ(wire[i].receipt.refunded, local[i].receipt.refunded);
  }
}

TEST(NetE2eTest, WireIsBitIdenticalToInProcessAcrossPoolSizes) {
  for (size_t pool : {size_t{0}, size_t{1}, size_t{8}}) {
    // Two hosts built identically: one serves in-process, one over the
    // wire. Batches run in the same global order on both, so admission
    // histories — and therefore noise streams, receipts, charge ids,
    // and cache hit patterns — match exactly.
    auto local_host = MakeHost(pool);
    auto wire_host = MakeHost(pool);
    auto server = BlowfishServer::Start(wire_host.get());
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    auto client_a = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                            kPolicyId, kTenantA);
    ASSERT_TRUE(client_a.ok()) << client_a.status().ToString();
    auto client_b = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                            kPolicyId, kTenantB);
    ASSERT_TRUE(client_b.ok()) << client_b.status().ToString();

    for (int round = 0; round < 3; ++round) {
      for (const char* tenant : {kTenantA, kTenantB}) {
        const std::string context = "pool " + std::to_string(pool) +
                                    ", round " + std::to_string(round) +
                                    ", tenant " + tenant;
        auto requests = EngineHost::ParseBatchText(kBatchText);
        ASSERT_TRUE(requests.ok());
        auto local = local_host
                         ->SubmitBatch(kPolicyId, tenant,
                                       std::move(*requests))
                         .get();
        ASSERT_TRUE(local.ok()) << local.status().ToString();

        BlowfishClient* client =
            tenant == std::string(kTenantA) ? client_a->get()
                                            : client_b->get();
        auto wire = client->SubmitBatchText(kBatchText);
        ASSERT_TRUE(wire.ok()) << context << ": "
                               << wire.status().ToString();
        ExpectResponsesEqual(*wire, *local, context);
      }
    }
    EXPECT_TRUE((*client_a)->Bye().ok());
    EXPECT_TRUE((*client_b)->Bye().ok());
    (*server)->Stop();
    const BlowfishServer::Stats stats = (*server)->stats();
    EXPECT_EQ(stats.connections, 2u);
    EXPECT_EQ(stats.batches, 6u);
    EXPECT_EQ(stats.protocol_errors, 0u);
  }
}

TEST(NetE2eTest, StreamedResultsCarryFinalPayloadsInCompletionOrder) {
  // Zero pool workers: execution is inline, so completion order is
  // request order — the one scheduling where "consistent with
  // completion callbacks" is an exact, assertable sequence.
  auto host = MakeHost(0);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok());

  std::vector<size_t> streamed_order;
  std::vector<QueryResponse> streamed;
  auto responses = (*client)->SubmitBatchText(
      kBatchText, [&](size_t index, const QueryResponse& response) {
        streamed_order.push_back(index);
        streamed.push_back(response);
      });
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(streamed_order.size(), responses->size());
  for (size_t i = 0; i < streamed_order.size(); ++i) {
    EXPECT_EQ(streamed_order[i], i);  // request order on 0 workers
    const QueryResponse& early = streamed[i];
    const QueryResponse& final_response = (*responses)[streamed_order[i]];
    // The streamed payload is already final; only receipts may differ
    // (settlement happens at the batch barrier).
    EXPECT_EQ(early.status.code(), final_response.status.code());
    EXPECT_EQ(early.label, final_response.label);
    ASSERT_EQ(early.values.size(), final_response.values.size());
    for (size_t v = 0; v < early.values.size(); ++v) {
      EXPECT_EQ(early.values[v], final_response.values[v]);
    }
  }
  EXPECT_TRUE((*client)->Bye().ok());
}

TEST(NetE2eTest, MultiClientSoakKeepsBudgetArithmeticExact) {
  constexpr size_t kClients = 8;
  constexpr int kBatches = 5;
  // Per batch: 0.25 + 0.125 + 0.25 + 0.125, charged to the client's own
  // session (sessions are created on first charge with the tenant's
  // default budget, 10 — five batches spend 3.75).
  constexpr double kBatchSpend = 0.75;

  // A test-local registry shared by host and server: the STATS totals
  // at the end must reconcile exactly against the soak's arithmetic.
  // The audit log records every one of the soak's interleaved charges
  // and is replay-verified against both tenants' ledgers at the end.
  obs::MetricsRegistry registry;
  obs::AuditLog audit;
  const std::string audit_path =
      ::testing::TempDir() + "/net_e2e_soak_audit.jsonl";
  ASSERT_TRUE(audit.Open(audit_path));
  auto host = MakeHost(4, &registry, nullptr, &audit);
  ServerOptions server_options;
  server_options.metrics = &registry;
  auto server = BlowfishServer::Start(host.get(), server_options);
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t k = 0; k < kClients; ++k) {
    clients.emplace_back([&, k]() {
      const char* tenant = (k % 2 == 0) ? kTenantA : kTenantB;
      const std::string session = "c" + std::to_string(k);
      // The same four kinds, all charged to this client's session.
      const std::string batch =
          "histogram eps=0.25 session=" + session + "\n" +
          "mean eps=0.125 session=" + session + "\n" +
          "range eps=0.25 lo=2 hi=9 session=" + session + "\n" +
          "quantiles eps=0.125 qs=0.25,0.5 session=" + session + "\n";
      auto client =
          BlowfishClient::Connect("127.0.0.1", port, kPolicyId, tenant);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        auto responses = (*client)->SubmitBatchText(batch);
        if (!responses.ok() || responses->size() != 4) {
          ++failures;
          return;
        }
        for (const QueryResponse& response : *responses) {
          if (!response.status.ok()) ++failures;
        }
      }
      if (!(*client)->Bye().ok()) ++failures;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Exact accounting: concurrency must not lose or double a single
  // charge. Each client's session exists on exactly its own tenant.
  for (size_t k = 0; k < kClients; ++k) {
    const char* tenant = (k % 2 == 0) ? kTenantA : kTenantB;
    const char* other = (k % 2 == 0) ? kTenantB : kTenantA;
    const std::string session = "c" + std::to_string(k);
    auto engine = host->engine(kPolicyId, tenant);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->accountant().Spent(session),
              kBatches * kBatchSpend)
        << session;
    auto other_engine = host->engine(kPolicyId, other);
    ASSERT_TRUE(other_engine.ok());
    EXPECT_EQ((*other_engine)->accountant().Spent(session), 0.0)
        << session;
  }

  // The same arithmetic over the wire: one-shot STATS (no HELLO). Every
  // client thread is joined, and each client read the server's frames
  // before exiting, so every server-side counter increment
  // happens-before this snapshot. The snapshot is taken before the
  // METRIC frames are written, so the expected frame counts include the
  // STATS request itself but not its reply.
  auto samples = BlowfishClient::FetchStats("127.0.0.1", port);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto metric = [&](const std::string& name) -> double {
    for (const MetricSample& sample : *samples) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "metric " << name << " missing from STATS";
    return -1.0;
  };
  const double kQueries = kClients * kBatches * 4.0;
  EXPECT_EQ(metric("net_connections_total"), kClients + 1.0);
  EXPECT_EQ(metric("net_batches_total"),
            static_cast<double>(kClients * kBatches));
  // Per client: HELLO + kBatches*(SUBMIT + 4 REQ) + BYE frames in; the
  // stats connection adds its STATS frame.
  EXPECT_EQ(metric("net_frames_in_total"),
            kClients * (2.0 + kBatches * 5.0) + 1.0);
  // Per client: OK + kBatches*(4 RESULT + 4 RECEIPT + DONE) + OK.
  EXPECT_EQ(metric("net_frames_out_total"),
            kClients * (2.0 + kBatches * 9.0));
  EXPECT_EQ(metric("net_connections_dead_total"), 0.0);
  EXPECT_EQ(metric("net_send_deadline_expired_total"), 0.0);
  EXPECT_EQ(metric("net_drain_escalations_total"), 0.0);
  // Engine layer, same snapshot: per-kind query counts and per-tenant
  // spend. 0.25/0.125 are binary-exact, so the double sums are exact.
  EXPECT_EQ(metric("engine_batches_total"),
            static_cast<double>(kClients * kBatches));
  for (const char* kind : {"histogram", "mean", "range", "quantiles"}) {
    EXPECT_EQ(metric(std::string("engine_queries_total{kind=") + kind +
                     "}"),
              kClients * kBatches * 1.0)
        << kind;
  }
  const double per_tenant_eps = (kClients / 2.0) * kBatches * kBatchSpend;
  EXPECT_EQ(metric("budget_eps_charged_total{tenant=p/alpha}"),
            per_tenant_eps);
  EXPECT_EQ(metric("budget_eps_charged_total{tenant=p/beta}"),
            per_tenant_eps);
  EXPECT_EQ(metric("budget_charges_total{tenant=p/alpha}"), kQueries / 2);
  EXPECT_EQ(metric("budget_charges_total{tenant=p/beta}"), kQueries / 2);
  EXPECT_EQ(metric("budget_refusals_total{tenant=p/alpha}"), 0.0);
  EXPECT_EQ(metric("budget_eps_refunded_total{tenant=p/alpha}"), 0.0);
  // Cache accounting: one lookup per query. The batch's four kinds map
  // to 3 distinct sensitivity shapes; concurrent first-touch of a shape
  // may compute twice (both engines miss before either inserts), so
  // misses is >= 3, but lookups never go missing.
  EXPECT_EQ(metric("sensitivity_cache_hits_total") +
                metric("sensitivity_cache_misses_total"),
            kQueries);
  EXPECT_GE(metric("sensitivity_cache_misses_total"), 3.0);
  // Latency histograms carry one sample per query.
  EXPECT_EQ(metric("engine_query_latency_us_count{kind=histogram}"),
            kClients * kBatches * 1.0);

  (*server)->Stop();
  EXPECT_EQ((*server)->stats().batches, kClients * kBatches);
  audit.Close();

  // The headline audit guarantee under concurrency: 8 clients' charges
  // interleaved arbitrarily, yet each tenant's slice of the log replays
  // into a fresh accountant whose persisted ledger matches the live
  // one BYTE for byte — same charge ids, same double arithmetic.
  for (const char* tenant : {kTenantA, kTenantB}) {
    auto engine = host->engine(kPolicyId, tenant);
    ASSERT_TRUE(engine.ok());
    std::ostringstream ledger;
    ASSERT_TRUE((*engine)->accountant().Save(ledger).ok());
    std::ifstream audit_in(audit_path);
    ASSERT_TRUE(audit_in.good());
    auto replay = VerifyAuditReplay(
        audit_in, std::string(kPolicyId) + "/" + tenant, ledger.str());
    ASSERT_TRUE(replay.ok()) << tenant << ": "
                             << replay.status().ToString();
    // Half the clients, all their charges and settlements; the other
    // tenant's lines are the skipped ones.
    EXPECT_EQ(replay->charges, kClients / 2 * kBatches * 4u) << tenant;
    EXPECT_EQ(replay->refunds, 0u) << tenant;
    EXPECT_GT(replay->skipped, 0u) << tenant;
  }
}

TEST(NetE2eTest, StatsVerbReportsExactSingleConnectionArithmetic) {
  // One connection, one batch, then STATS on the same connection: every
  // expected value is computable client-side, down to the byte. The
  // client knows exactly which frames it shipped (and their encoded
  // sizes), and the server snapshots the registry before writing the
  // reply — so frames-in includes the STATS request, frames-out stops
  // at the batch's DONE.
  obs::MetricsRegistry registry;
  auto host = MakeHost(2, &registry);
  ServerOptions server_options;
  server_options.metrics = &registry;
  auto server = BlowfishServer::Start(host.get(), server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto responses = (*client)->SubmitBatchText(kBatchText);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 4u);

  // Reconstruct the exact bytes the server has received: HELLO, SUBMIT,
  // the four REQ frames, and the STATS request (4-byte length prefix
  // each, via the same EncodeFrame the client uses).
  std::vector<std::string> shipped = {
      EncodeHelloPayload(kPolicyId, kTenantA), EncodeSubmitPayload(4)};
  std::string text(kBatchText);
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    shipped.push_back(EncodeReqPayload(text.substr(pos, nl - pos)));
    pos = nl + 1;
  }
  shipped.push_back(EncodeStatsPayload());
  double expected_bytes_in = 0;
  for (const std::string& payload : shipped) {
    expected_bytes_in += static_cast<double>(EncodeFrame(payload).size());
  }

  auto samples = (*client)->FetchStats();
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto metric = [&](const std::string& name) -> double {
    for (const MetricSample& sample : *samples) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "metric " << name << " missing from STATS";
    return -1.0;
  };
  EXPECT_EQ(metric("net_connections_total"), 1.0);
  EXPECT_EQ(metric("net_connections_active"), 1.0);
  // HELLO + SUBMIT + 4 REQ + STATS.
  EXPECT_EQ(metric("net_frames_in_total"), 7.0);
  EXPECT_EQ(metric("net_bytes_in_total"), expected_bytes_in);
  // OK + 4 RESULT + 4 RECEIPT + DONE; the METRIC frames come after the
  // snapshot.
  EXPECT_EQ(metric("net_frames_out_total"), 10.0);
  EXPECT_GE(metric("net_bytes_out_total"), 10.0 * 4);
  EXPECT_EQ(metric("net_batches_total"), 1.0);
  EXPECT_EQ(metric("engine_batches_total"), 1.0);
  EXPECT_EQ(metric("engine_queries_total{kind=histogram}"), 1.0);
  EXPECT_EQ(metric("engine_eps_charged_total{kind=histogram}"), 0.25);
  EXPECT_EQ(metric("engine_eps_charged_total{kind=mean}"), 0.125);
  EXPECT_EQ(metric("budget_eps_charged_total{tenant=p/alpha}"), 0.75);
  EXPECT_EQ(metric("budget_charges_total{tenant=p/alpha}"), 4.0);
  // The four kinds map to 3 distinct sensitivity shapes (two share
  // one), all first-touch: 3 misses, then 1 hit, serialized — exact.
  EXPECT_EQ(metric("sensitivity_cache_misses_total"), 3.0);
  EXPECT_EQ(metric("sensitivity_cache_hits_total"), 1.0);
  EXPECT_EQ(metric("engine_query_latency_us_count{kind=mean}"), 1.0);

  EXPECT_TRUE((*client)->Bye().ok());
}

TEST(NetE2eTest, TelemetryDoesNotPerturbServedBytes) {
  // The determinism invariant of ISSUE scope: with a live registry AND
  // an enabled span tracer on the serving host, every wire response is
  // still bit-identical to an untelemetered in-process host's. Metrics
  // and spans observe completions; they never touch RNG streams or
  // reorder anything.
  for (size_t pool : {size_t{0}, size_t{8}}) {
    auto local_host = MakeHost(pool);  // process defaults, tracer off
    obs::MetricsRegistry registry;
    obs::TraceWriter tracer;
    const std::string trace_path =
        ::testing::TempDir() + "/net_e2e_trace_" + std::to_string(pool) +
        ".jsonl";
    ASSERT_TRUE(tracer.Open(trace_path));
    auto wire_host = MakeHost(pool, &registry, &tracer);
    ServerOptions server_options;
    server_options.metrics = &registry;
    auto server = BlowfishServer::Start(wire_host.get(), server_options);
    ASSERT_TRUE(server.ok());

    auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                          kPolicyId, kTenantA);
    ASSERT_TRUE(client.ok());
    for (int round = 0; round < 3; ++round) {
      auto requests = EngineHost::ParseBatchText(kBatchText);
      ASSERT_TRUE(requests.ok());
      auto local = local_host
                       ->SubmitBatch(kPolicyId, kTenantA,
                                     std::move(*requests))
                       .get();
      ASSERT_TRUE(local.ok());
      auto wire = (*client)->SubmitBatchText(kBatchText);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      ExpectResponsesEqual(*wire, *local,
                           "telemetry on, pool " + std::to_string(pool) +
                               ", round " + std::to_string(round));
    }
    EXPECT_TRUE((*client)->Bye().ok());
    (*server)->Stop();
    tracer.Close();

    // The spans really were written: 3 batches x (queue_wait +
    // sensitivity + scan + execute + settle phase spans + 4 query spans
    // + 1 batch span), one JSON object per line. The server-side
    // frame_write span is absent — this host's tracer is not wired
    // into the ServerOptions, mirroring a daemon run where only the
    // engine layer traces.
    std::ifstream trace(trace_path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(trace, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 30u);
    for (const std::string& l : lines) {
      EXPECT_EQ(l.front(), '{');
      EXPECT_EQ(l.back(), '}');
      EXPECT_NE(l.find("\"tenant\":\"p/alpha\""), std::string::npos);
    }
  }
}

TEST(NetE2eTest, ClientDeathMidBatchSettlesLikeACleanRun) {
  // The batch charges 0.25 + 0.5 + 0.125; the injected failure refunds
  // its 0.5 at the batch barrier, so a clean run settles at 0.375. The
  // gated query holds the batch open in the death run.
  const std::string batch =
      "histogram eps=0.25\n"
      "always_fail eps=0.5\n"
      "slow_gate eps=0.125\n";
  constexpr double kSettledSpend = 0.25 + 0.125;

  // Clean run: gate open, read everything, assert the refund crossed
  // the wire.
  SetGate(true);
  auto clean_host = MakeHost(2);
  auto clean_server = BlowfishServer::Start(clean_host.get());
  ASSERT_TRUE(clean_server.ok());
  auto clean_client = BlowfishClient::Connect(
      "127.0.0.1", (*clean_server)->port(), kPolicyId, kTenantA);
  ASSERT_TRUE(clean_client.ok());
  auto clean = (*clean_client)->SubmitBatchText(batch);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->size(), 3u);
  EXPECT_TRUE((*clean)[0].status.ok());
  EXPECT_EQ((*clean)[1].status.code(), StatusCode::kInternal);
  EXPECT_TRUE((*clean)[1].receipt.refunded);  // via the RECEIPT frame
  EXPECT_EQ((*clean)[1].receipt.charged, 0.5);
  EXPECT_TRUE((*clean)[2].status.ok());
  EXPECT_TRUE((*clean_client)->Bye().ok());
  (*clean_server)->Stop();
  auto clean_engine = clean_host->engine(kPolicyId, kTenantA);
  ASSERT_TRUE(clean_engine.ok());
  EXPECT_EQ((*clean_engine)->accountant().Spent(""), kSettledSpend);

  // Death run: the gate is closed, so the batch cannot reach its
  // barrier until the test opens it — which happens only *after* the
  // client hard-drops the connection on its first streamed RESULT. The
  // connection is therefore provably dead mid-batch, deterministically.
  // Server::Stop() drains the connection thread (the batch completes
  // engine-side first), so afterwards the ledger must have settled to
  // exactly the clean-run figure — charges kept for delivered-or-not
  // successes, the failed query refunded, nothing leaked.
  SetGate(false);
  obs::AuditLog death_audit;
  const std::string death_audit_path =
      ::testing::TempDir() + "/net_e2e_death_audit.jsonl";
  ASSERT_TRUE(death_audit.Open(death_audit_path));
  auto death_host = MakeHost(2, nullptr, nullptr, &death_audit);
  auto death_server = BlowfishServer::Start(death_host.get());
  ASSERT_TRUE(death_server.ok());
  auto death_client = BlowfishClient::Connect(
      "127.0.0.1", (*death_server)->port(), kPolicyId, kTenantA);
  ASSERT_TRUE(death_client.ok());
  std::atomic<bool> aborted{false};
  auto death = (*death_client)
                   ->SubmitBatchText(
                       batch, [&](size_t, const QueryResponse&) {
                         if (aborted.exchange(true)) return;
                         (*death_client)->Abort();
                         SetGate(true);
                       });
  EXPECT_FALSE(death.ok());  // the connection died under the batch
  SetGate(true);             // in case no RESULT ever arrived
  (*death_server)->Stop();   // barrier: connection thread joined
  EXPECT_TRUE(aborted.load());
  auto death_engine = death_host->engine(kPolicyId, kTenantA);
  ASSERT_TRUE(death_engine.ok());
  EXPECT_EQ((*death_engine)->accountant().Spent(""), kSettledSpend);
  death_audit.Close();

  // The audit log of the killed-client run replays to exactly the
  // settled ledger — the refund of the failed query included. The
  // socket's death is invisible to the privacy accounting, and the log
  // proves it.
  std::ostringstream death_ledger;
  ASSERT_TRUE((*death_engine)->accountant().Save(death_ledger).ok());
  std::ifstream death_audit_in(death_audit_path);
  ASSERT_TRUE(death_audit_in.good());
  auto replay = VerifyAuditReplay(
      death_audit_in, std::string(kPolicyId) + "/" + kTenantA,
      death_ledger.str());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->charges, 3u);
  EXPECT_EQ(replay->refunds, 1u);  // always_fail's 0.5 came back
}

TEST(NetE2eTest, TraceContextJoinsClientAndServerSpans) {
  // The tentpole contract: the client mints deterministic trace/span
  // ids from Random::Fork streams, carries them on SUBMIT, and the
  // server echoes them on every reply frame and stamps every
  // server-side span and audit line with them — so concatenating the
  // two JSONL files yields one causal tree per batch
  // (`blowfish_cli trace`). Tracing must not perturb one served byte.
  obs::MetricsRegistry registry;
  obs::TraceWriter server_tracer;
  obs::TraceWriter client_tracer;
  obs::AuditLog audit;
  const std::string server_path =
      ::testing::TempDir() + "/net_e2e_trace_server.jsonl";
  const std::string client_path =
      ::testing::TempDir() + "/net_e2e_trace_client.jsonl";
  const std::string audit_path =
      ::testing::TempDir() + "/net_e2e_trace_audit.jsonl";
  ASSERT_TRUE(server_tracer.Open(server_path));
  ASSERT_TRUE(client_tracer.Open(client_path));
  ASSERT_TRUE(audit.Open(audit_path));

  auto host = MakeHost(2, &registry, &server_tracer, &audit);
  ServerOptions server_options;
  server_options.metrics = &registry;
  server_options.tracer = &server_tracer;
  auto server = BlowfishServer::Start(host.get(), server_options);
  ASSERT_TRUE(server.ok());

  auto reference = MakeHost(2);  // untraced control host

  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok());
  (*client)->EnableTracing(&client_tracer, kSeed);
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    auto requests = EngineHost::ParseBatchText(kBatchText);
    ASSERT_TRUE(requests.ok());
    auto local =
        reference->SubmitBatch(kPolicyId, kTenantA, std::move(*requests))
            .get();
    ASSERT_TRUE(local.ok());
    auto wire = (*client)->SubmitBatchText(kBatchText);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ExpectResponsesEqual(*wire, *local,
                         "traced round " + std::to_string(round));
  }
  EXPECT_TRUE((*client)->Bye().ok());
  (*server)->Stop();
  server_tracer.Close();
  client_tracer.Close();
  audit.Close();

  // The ids are pinned by contract, reproducible by any reader: the
  // trace id is the first draw of Fork(0) of the client's seed, batch
  // k's span id the first draw of Fork(k + 1), zero remapped to 1.
  auto draw = [](uint64_t stream) {
    const uint64_t id = Random(kSeed).Fork(stream).engine()();
    return id != 0 ? id : uint64_t{1};
  };
  const std::string trace_id = std::to_string(draw(0));
  const std::vector<std::string> span_ids = {std::to_string(draw(1)),
                                             std::to_string(draw(2))};

  struct FileSpans {
    std::set<std::string> kinds;
    std::set<std::string> spans;
    size_t stamped = 0;
    size_t total = 0;
  };
  auto scan = [&](const std::string& path) {
    FileSpans out;
    std::ifstream in(path);
    std::string line;
    std::vector<obs::JsonField> fields;
    while (std::getline(in, line)) {
      ++out.total;
      if (!obs::ParseFlatJsonLine(line, &fields)) {
        ADD_FAILURE() << "unparseable span line: " << line;
        continue;
      }
      const obs::JsonField* trace = obs::FindJsonField(fields, "trace");
      if (trace == nullptr) continue;
      ++out.stamped;
      EXPECT_EQ(trace->value, trace_id) << line;
      const obs::JsonField* span_id =
          obs::FindJsonField(fields, "span_id");
      if (span_id != nullptr) out.spans.insert(span_id->value);
      const obs::JsonField* kind = obs::FindJsonField(fields, "span");
      if (kind != nullptr) out.kinds.insert(kind->value);
    }
    return out;
  };

  const FileSpans server_spans = scan(server_path);
  const FileSpans client_spans = scan(client_path);
  // Every line on both sides is stamped, and both sides know both
  // batches' span ids — the files concatenate into one tree.
  EXPECT_EQ(client_spans.stamped, client_spans.total);
  EXPECT_EQ(server_spans.stamped, server_spans.total);
  EXPECT_GT(server_spans.total, 0u);
  EXPECT_EQ(client_spans.kinds,
            (std::set<std::string>{"client_send", "client_decode",
                                   "client_assemble"}));
  for (const std::string& id : span_ids) {
    EXPECT_TRUE(client_spans.spans.count(id)) << "client missing " << id;
    EXPECT_TRUE(server_spans.spans.count(id)) << "server missing " << id;
  }
  // The server tree covers the full life of a batch, wire receipt to
  // frame flush.
  for (const char* kind :
       {"queue_wait", "sensitivity", "execute", "settle", "query",
        "batch", "frame_write"}) {
    EXPECT_TRUE(server_spans.kinds.count(kind)) << "missing " << kind;
  }

  // Every audit line resolves into that tree: same trace id, a span id
  // the span files know. 2 batches x (4 charges + 4 settles).
  std::ifstream audit_in(audit_path);
  std::string line;
  std::vector<obs::JsonField> fields;
  size_t audit_lines = 0;
  while (std::getline(audit_in, line)) {
    ++audit_lines;
    if (!obs::ParseFlatJsonLine(line, &fields)) {
      ADD_FAILURE() << "unparseable audit line: " << line;
      continue;
    }
    const obs::JsonField* trace = obs::FindJsonField(fields, "trace");
    ASSERT_NE(trace, nullptr) << line;
    EXPECT_EQ(trace->value, trace_id) << line;
    const obs::JsonField* span_id = obs::FindJsonField(fields, "span_id");
    ASSERT_NE(span_id, nullptr) << line;
    EXPECT_TRUE(server_spans.spans.count(span_id->value)) << line;
  }
  EXPECT_EQ(audit_lines, kRounds * 8u);
}

TEST(NetE2eTest, UnknownKeysRideKnownVerbsUnharmed) {
  // The protocol's evolution contract (net/protocol.h): parsers accept
  // and ignore unknown `key=value` tokens on known verbs, so a newer
  // peer can talk to an older one with no flag day. trace=/span= ride
  // SUBMIT exactly this way — an old server would serve the batch
  // ignoring them; this one must echo them on every reply frame.
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto sock = Socket::ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(sock.ok());
  auto send_payload = [&](const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    ASSERT_TRUE(sock->SendAll(frame.data(), frame.size()).ok());
  };
  FrameDecoder decoder;
  char buf[4096];
  auto read_payload = [&]() {
    std::string payload;
    while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
      auto n = sock->Recv(buf, sizeof(buf));
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) return std::string();
      decoder.Feed(buf, *n);
    }
    return payload;
  };

  // HELLO carrying a key from the future.
  send_payload(EncodeHelloPayload(kPolicyId, kTenantA) + " shiny=new");
  EXPECT_NE(read_payload().find(kVerbOk), std::string::npos);

  // SUBMIT carrying both an unknown key and a trace context.
  send_payload(EncodeSubmitPayload(1) + " trace=7 span=9 future=maybe");
  send_payload(EncodeReqPayload("histogram eps=0.25"));
  std::vector<std::string> replies;
  while (true) {
    const std::string payload = read_payload();
    ASSERT_FALSE(payload.empty());
    auto msg = ParseWireMessage(payload);
    ASSERT_TRUE(msg.ok()) << payload;
    ASSERT_NE(msg->verb, std::string(kVerbErr)) << payload;
    replies.push_back(payload);
    if (msg->verb == kVerbDone) break;
  }
  // RESULT + RECEIPT + DONE, each echoing the ids it was given.
  ASSERT_EQ(replies.size(), 3u);
  for (const std::string& payload : replies) {
    EXPECT_NE(payload.find(" trace=7"), std::string::npos) << payload;
    EXPECT_NE(payload.find(" span=9"), std::string::npos) << payload;
  }
}

TEST(NetE2eTest, HealthVerbReportsReadinessAndBudgetGauges) {
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  // Spend some budget first so the gauges have arithmetic to report.
  auto client =
      BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok());
  auto responses = (*client)->SubmitBatchText(kBatchText);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();

  // One-shot probe: HEALTH needs no HELLO, exactly like STATS.
  auto samples = BlowfishClient::FetchHealth("127.0.0.1", port);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto metric = [&](const std::string& name) -> double {
    for (const MetricSample& sample : *samples) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "sample " << name << " missing from HEALTH";
    return -1.0;
  };
  EXPECT_EQ(metric("health_ready"), 1.0);
  EXPECT_EQ(metric("health_draining"), 0.0);
  EXPECT_GT(metric("health_uptime_us"), 0.0);
  // The probing connection itself plus the persistent client.
  EXPECT_GE(metric("health_connections_active"), 1.0);
  // kBatchText spends 0.25 + 0.25 + 0.125 on the default session and
  // 0.125 on s1 against the tenant default budget of 10 — all
  // binary-exact doubles, so the gauges are exact. Tenant beta has
  // served nothing, and a health probe must not lazily construct its
  // engine, so only alpha's sessions appear.
  EXPECT_EQ(metric("health_budget_remaining{tenant=p/alpha,"
                   "session=default}"),
            10.0 - 0.625);
  EXPECT_EQ(metric("health_budget_remaining{tenant=p/alpha,session=s1}"),
            10.0 - 0.125);
  for (const MetricSample& sample : *samples) {
    EXPECT_EQ(sample.name.find("tenant=p/beta"), std::string::npos)
        << sample.name;
  }
  EXPECT_TRUE((*client)->Bye().ok());
}

TEST(NetE2eTest, ProtocolViolationsGetStructuredErrors) {
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  // Unknown tenant: the server's structured NotFound crosses the wire.
  auto unknown =
      BlowfishClient::Connect("127.0.0.1", port, kPolicyId, "nope");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // Garbage instead of HELLO: structured ERR frame, then close.
  {
    auto sock = Socket::ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(sock.ok());
    const std::string frame = EncodeFrame("NOTAVERB");
    ASSERT_TRUE(sock->SendAll(frame.data(), frame.size()).ok());
    FrameDecoder decoder;
    char buf[1024];
    std::string payload;
    while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
      auto n = sock->Recv(buf, sizeof(buf));
      ASSERT_TRUE(n.ok());
      ASSERT_GT(*n, 0u);
      decoder.Feed(buf, *n);
    }
    auto msg = ParseWireMessage(payload);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->verb, std::string(kVerbErr));
    Status error;
    ASSERT_TRUE(ParseStatusFields(*msg, &error).ok());
    EXPECT_EQ(error.code(), StatusCode::kFailedPrecondition);
  }

  // An oversized length prefix poisons the connection with ERR.
  {
    auto sock = Socket::ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(sock.ok());
    const char huge[4] = {0x7f, 0x7f, 0x7f, 0x7f};
    ASSERT_TRUE(sock->SendAll(huge, sizeof(huge)).ok());
    FrameDecoder decoder;
    char buf[1024];
    std::string payload;
    while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
      auto n = sock->Recv(buf, sizeof(buf));
      ASSERT_TRUE(n.ok());
      ASSERT_GT(*n, 0u);
      decoder.Feed(buf, *n);
    }
    auto msg = ParseWireMessage(payload);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->verb, std::string(kVerbErr));
  }

  // A malformed batch is an ERR, and the connection stays usable.
  {
    auto client =
        BlowfishClient::Connect("127.0.0.1", port, kPolicyId, kTenantA);
    ASSERT_TRUE(client.ok());
    auto bad = (*client)->SubmitBatchText("no_such_kind eps=0.5\n");
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    auto good = (*client)->SubmitBatchText("histogram eps=0.25\n");
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_TRUE((*good)[0].status.ok());
    EXPECT_TRUE((*client)->Bye().ok());
  }

  (*server)->Stop();
  EXPECT_GE((*server)->stats().protocol_errors, 2u);
}

TEST(NetE2eTest, OversizedResponsePayloadBecomesAStructuredError) {
  // A histogram over a 60k-value domain serves fine in-process but
  // cannot fit one RESULT frame (~1.1 MB of %.17g values vs the 1 MiB
  // cap). The wire must degrade to a structured per-query error with
  // the receipt intact — never a daemon assert or a poisoned client
  // connection.
  EngineHostOptions options;
  options.num_threads = 1;
  options.root_seed = kSeed;
  auto domain = LineDomain(60000);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host(options);
  ASSERT_TRUE(
      host.AddTenant(kPolicyId, "big", policy, MakeData(domain, 100, 9))
          .ok());
  auto server = BlowfishServer::Start(&host);
  ASSERT_TRUE(server.ok());
  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, "big");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto responses = (*client)->SubmitBatchText("histogram eps=0.5\n");
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 1u);
  EXPECT_EQ((*responses)[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE((*responses)[0].status.message().find("frame cap"),
            std::string::npos);
  EXPECT_TRUE((*responses)[0].values.empty());
  // The release happened and the budget WAS charged; the receipt says
  // so even though the payload could not be delivered.
  EXPECT_EQ((*responses)[0].receipt.charged, 0.5);
  auto engine = host.engine(kPolicyId, "big");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->accountant().Spent(""), 0.5);

  // Oversized request lines fail fast client-side...
  const std::string giant =
      "histogram eps=0.5 label=" + std::string(kMaxRequestLine, 'x') +
      "\n";
  EXPECT_EQ((*client)->SubmitBatchText(giant).status().code(),
            StatusCode::kInvalidArgument);
  // ...and are refused server-side for a client that skips the check,
  // with the connection left usable.
  {
    auto sock = Socket::ConnectTcp("127.0.0.1", (*server)->port());
    ASSERT_TRUE(sock.ok());
    auto send_payload = [&](const std::string& payload) {
      const std::string frame = EncodeFrame(payload);
      ASSERT_TRUE(sock->SendAll(frame.data(), frame.size()).ok());
    };
    FrameDecoder decoder;
    char buf[4096];
    auto read_payload = [&]() {
      std::string payload;
      while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
        auto n = sock->Recv(buf, sizeof(buf));
        EXPECT_TRUE(n.ok());
        if (!n.ok() || *n == 0) return std::string();
        decoder.Feed(buf, *n);
      }
      return payload;
    };
    send_payload(EncodeHelloPayload(kPolicyId, "big"));
    EXPECT_NE(read_payload().find(kVerbOk), std::string::npos);
    send_payload(EncodeSubmitPayload(1));
    send_payload(EncodeReqPayload("histogram eps=0.5 label=" +
                                  std::string(kMaxRequestLine + 1, 'x')));
    const std::string err = read_payload();
    auto msg = ParseWireMessage(err);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->verb, std::string(kVerbErr));
    Status refused;
    ASSERT_TRUE(ParseStatusFields(*msg, &refused).ok());
    EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE((*client)->Bye().ok());
}

TEST(NetE2eTest, StopMidBatchStillDeliversTheBatch) {
  // Drain-on-SIGTERM semantics: Stop() must let a batch in flight
  // finish and flush — the client still sees RESULTs through DONE.
  auto host = MakeHost(2);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto client = BlowfishClient::Connect("127.0.0.1", (*server)->port(),
                                        kPolicyId, kTenantA);
  ASSERT_TRUE(client.ok());

  std::thread stopper;
  std::atomic<bool> stop_started{false};
  auto responses = (*client)->SubmitBatchText(
      kBatchText, [&](size_t, const QueryResponse&) {
        if (stop_started.exchange(true)) return;
        stopper = std::thread([&]() { (*server)->Stop(); });
      });
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_EQ(responses->size(), 4u);
  for (const QueryResponse& response : *responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  if (stopper.joinable()) stopper.join();
}

TEST(NetE2eTest, ErrorFramesStayBoundedForHugeClientTokens) {
  // EncodeErrorPayload caps echoed client text: a message that would
  // escape to 3x the frame cap must still produce an encodable frame
  // (RESULT frames were bounded from day one; ERR frames echo just as
  // much attacker-controlled text).
  const std::string giant(2 * kMaxFramePayload, '%');
  const std::string payload =
      EncodeErrorPayload(Status::InvalidArgument(giant));
  EXPECT_LE(payload.size(), kMaxFramePayload);
  EncodeFrame(payload);  // must not hit the oversize assert
  auto msg = ParseWireMessage(payload);
  ASSERT_TRUE(msg.ok());
  Status decoded;
  ASSERT_TRUE(ParseStatusFields(*msg, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.message().find("truncated"), std::string::npos);

  // End to end: a ~700 KiB garbage verb of '%' fits the inbound frame
  // cap, but "expected HELLO, got <verb>" escapes to ~2.1 MiB. The
  // server must answer with a bounded ERR frame — not abort in
  // EncodeFrame or emit an oversized frame that poisons the client
  // decoder.
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto sock = Socket::ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(sock.ok());
  const std::string bad = EncodeFrame(std::string(700 << 10, '%'));
  ASSERT_TRUE(sock->SendAll(bad.data(), bad.size()).ok());
  FrameDecoder decoder;
  char buf[4096];
  std::string err;
  while (decoder.Next(&err) != FrameDecoder::Result::kFrame) {
    ASSERT_TRUE(decoder.error().ok()) << decoder.error().ToString();
    auto n = sock->Recv(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    decoder.Feed(buf, *n);
  }
  auto wire = ParseWireMessage(err);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->verb, std::string(kVerbErr));
  Status status;
  ASSERT_TRUE(ParseStatusFields(*wire, &status).ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("expected HELLO"), std::string::npos);
  EXPECT_NE(status.message().find("truncated"), std::string::npos);
}

TEST(NetE2eTest, BatchTotalBytesAreCapped) {
  // Per-line (64 KiB) and per-batch (65536 lines) caps compose to
  // ~4.3 GiB; the server must refuse a batch past the cumulative byte
  // cap instead of buffering it all, and the connection stays usable.
  auto host = MakeHost(1);
  auto server = BlowfishServer::Start(host.get());
  ASSERT_TRUE(server.ok());
  auto sock = Socket::ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(sock.ok());
  auto send_payload = [&](const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    ASSERT_TRUE(sock->SendAll(frame.data(), frame.size()).ok());
  };
  FrameDecoder decoder;
  char buf[4096];
  auto read_payload = [&]() {
    std::string payload;
    while (decoder.Next(&payload) != FrameDecoder::Result::kFrame) {
      auto n = sock->Recv(buf, sizeof(buf));
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) return std::string();
      decoder.Feed(buf, *n);
    }
    return payload;
  };
  send_payload(EncodeHelloPayload(kPolicyId, kTenantA));
  EXPECT_NE(read_payload().find(kVerbOk), std::string::npos);
  // 200 lines at exactly the per-line cap (each passes the line
  // check) total ~12.8 MiB — past the 8 MiB batch cap.
  send_payload(EncodeSubmitPayload(200));
  const std::string line(kMaxRequestLine, 'x');
  for (int i = 0; i < 200; ++i) send_payload(EncodeReqPayload(line));
  auto msg = ParseWireMessage(read_payload());
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->verb, std::string(kVerbErr));
  Status refused;
  ASSERT_TRUE(ParseStatusFields(*msg, &refused).ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.message().find("batch text"), std::string::npos);
  // The connection survives the refusal.
  send_payload(EncodeSubmitPayload(1));
  send_payload(EncodeReqPayload("histogram eps=0.25"));
  bool saw_done = false;
  for (int i = 0; i < 8 && !saw_done; ++i) {
    auto reply = ParseWireMessage(read_payload());
    ASSERT_TRUE(reply.ok());
    ASSERT_NE(reply->verb, std::string(kVerbErr));
    saw_done = reply->verb == kVerbDone;
  }
  EXPECT_TRUE(saw_done);
}

TEST(NetE2eTest, SendTimeoutUnblocksAWriterOnAStalledPeer) {
  auto listener = ListenSocket::BindTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto client = Socket::ConnectTcp("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(accepted->SetSendTimeout(100).ok());
  // The peer never reads: once its receive window and our send buffer
  // fill, the write can make no progress and must fail within the
  // deadline rather than block the writing thread forever.
  const std::string chunk(1 << 20, 'x');
  Status status = Status::OK();
  for (int i = 0; i < 256 && status.ok(); ++i) {
    status = accepted->SendAll(chunk.data(), chunk.size(), 100);
  }
  EXPECT_FALSE(status.ok());
  // Structured code, not a string probe: callers (the server's dead-peer
  // policy among them) branch on kDeadlineExceeded.
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("timed out"), std::string::npos);
}

TEST(NetE2eTest, SendDeadlineCoversATrickleReadingPeer) {
  // The deadline is per SendAll call, NOT per send(): a peer reading a
  // few bytes per window makes just enough progress to reset a
  // per-send() bound forever, but cannot outlast one total deadline.
  auto listener = ListenSocket::BindTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto client = Socket::ConnectTcp("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok());
  std::atomic<bool> stop_reading{false};
  std::thread trickler([&]() {
    char buf[4096];
    while (!stop_reading.load()) {
      auto n = client->Recv(buf, sizeof(buf));
      if (!n.ok() || *n == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  // 64 MiB against a peer draining ~200 KiB/s: progress never stops,
  // but the 300 ms total deadline must still fire.
  const std::string huge(size_t{64} << 20, 'x');
  const Status status = accepted->SendAll(huge.data(), huge.size(), 300);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("timed out"), std::string::npos);
  stop_reading.store(true);
  accepted->ShutdownBoth();
  client->ShutdownBoth();
  trickler.join();
}

TEST(NetE2eTest, StopCompletesAgainstAClientThatStoppedReading) {
  // The reviewer scenario for the drain path: a client pipelines
  // batches with large responses and never reads a byte. The server's
  // writes stall on the full TCP buffer; the per-send timeout marks
  // the connection dead, and Stop()'s ShutdownBoth escalation covers
  // a writer still blocked (SHUT_RD alone never wakes a send()). The
  // assertion is simply that Stop() returns.
  EngineHostOptions options;
  options.num_threads = 1;
  options.root_seed = kSeed;
  auto domain = LineDomain(20000);
  Policy policy = Policy::FullDomain(domain).value();
  EngineHost host(options);
  ASSERT_TRUE(
      host.AddTenant(kPolicyId, "big", policy, MakeData(domain, 50, 11))
          .ok());
  ServerOptions sopts;
  sopts.send_timeout_ms = 100;
  sopts.drain_grace_ms = 100;
  auto server = BlowfishServer::Start(&host, sopts);
  ASSERT_TRUE(server.ok());

  auto sock = Socket::ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(sock.ok());
  auto send_payload = [&](const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    ASSERT_TRUE(sock->SendAll(frame.data(), frame.size()).ok());
  };
  send_payload(EncodeHelloPayload(kPolicyId, "big"));
  char buf[256];
  auto n = sock->Recv(buf, sizeof(buf));  // the OK frame
  ASSERT_TRUE(n.ok());
  // Each batch's RESULT frame is ~400 KiB of %.17g values; 64 of them
  // overflow any plausible socket buffering, so the handler wedges in
  // send() partway through.
  for (int i = 0; i < 64; ++i) {
    send_payload(EncodeSubmitPayload(1));
    send_payload(EncodeReqPayload("histogram eps=0.01"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  (*server)->Stop();
}

}  // namespace
}  // namespace blowfish
