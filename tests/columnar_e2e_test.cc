// Scan-mode equivalence, end to end: every registered QueryOp served
// through ReleaseEngine under all three ScanModes (row-major walk,
// per-query columnar kernel, batch-amortized shared scan) at pool sizes
// {0, 1, 8}, on line and grid fixtures (unconstrained and constrained
// twins of each), asserting
// byte-identical responses — values, statuses, sensitivities, full
// budget receipts — and identical budget arithmetic. The representation
// an engine reads its dataset through must be unobservable in its
// output; only the clock can tell the modes apart.
//
// A final test drives the same contract over the wire: two daemons,
// one serving a row-major tenant and one a shared-scan tenant, answer a
// whole-registry batch with byte-identical frames.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/policy.h"
#include "core/secret_graph.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "server/engine_host.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 20140612;
constexpr double kEps = 0.25;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 11) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

/// One batch line per registered kind, each with its own ExampleArgs —
/// enumerating the registry keeps this suite honest when a new op file
/// lands: the new kind is covered (or fails loudly) with zero edits here.
std::string WholeRegistryBatchText() {
  std::string text;
  for (const std::string& kind :
       QueryOpRegistry::Global().KnownKinds()) {
    auto op = QueryOpRegistry::Global().Create(kind);
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    text += kind + " eps=" + std::to_string(kEps) + " label=" + kind;
    const std::string args = (*op)->ExampleArgs();
    if (!args.empty()) text += " " + args;
    text += "\n";
  }
  return text;
}

std::vector<QueryRequest> WholeRegistryBatch() {
  auto requests = ParseBatchRequests(WholeRegistryBatchText());
  EXPECT_TRUE(requests.ok()) << requests.status().ToString();
  return std::move(*requests);
}

struct Fixture {
  std::string name;
  Policy policy;
  Dataset data;
  /// Kinds expected to refuse this fixture (dimension mismatch or the
  /// documented hier_range constrained holdout). Refusals are part of
  /// the transcript: they must be byte-identical across modes and
  /// pools, same as served payloads.
  std::vector<std::string> expected_refusals;
};

/// Five fixtures covering the registry's whole domain/graph/constraint
/// matrix: Line(16) split into four G^P cells (plus a constrained twin
/// pinning one count constraint from the data), Line(16) under the
/// line secret graph, and an 8x8 grid split into 2x2 G^P cells (plus
/// its constrained twin). On the partitioned line the refusals are the
/// spatial op (quadtree needs two attributes) and hier_range (the OH
/// mechanism resolves theta from line/full/threshold graphs only; on
/// the pinned twin it refuses as the documented constrained holdout);
/// on the line graph cell_histogram refuses (no G^P cells) and
/// hier_range finally serves; on the grid the whole 1-D family refuses
/// instead.
std::vector<Fixture> Fixtures() {
  const std::vector<std::string> kGridRefusals{
      "cdf", "hier_range", "mean", "quantiles", "range", "wavelet_range"};
  std::vector<Fixture> out;
  auto domain = LineDomain(16);
  Dataset data = MakeData(domain, 300, 13);
  {
    auto part = PartitionGraph::UniformGrid(domain, {4}).value();
    Policy policy =
        Policy::Create(domain,
                       std::shared_ptr<const SecretGraph>(part.release()))
            .value();
    out.push_back(Fixture{"unconstrained", std::move(policy), data,
                          {"hier_range", "quadtree"}});
  }
  {
    auto part = PartitionGraph::UniformGrid(domain, {4}).value();
    ConstraintSet cs;
    CountQuery low("low", [](ValueIndex x) { return x < 4; });
    const uint64_t answer = low.Evaluate(data);
    cs.AddWithAnswer(std::move(low), answer);
    Policy policy =
        Policy::Create(domain,
                       std::shared_ptr<const SecretGraph>(part.release()),
                       std::move(cs))
            .value();
    out.push_back(Fixture{"constrained", std::move(policy), data,
                          {"hier_range", "quadtree"}});
  }
  {
    Policy policy =
        Policy::Create(domain, std::make_shared<LineGraph>(domain->size()))
            .value();
    out.push_back(Fixture{"line_graph", std::move(policy), std::move(data),
                          {"cell_histogram", "quadtree"}});
  }
  auto grid =
      std::make_shared<const Domain>(Domain::Grid(8, 2).value());
  Dataset grid_data = MakeData(grid, 300, 17);
  {
    auto part = PartitionGraph::UniformGrid(grid, {2, 2}).value();
    Policy policy =
        Policy::Create(grid,
                       std::shared_ptr<const SecretGraph>(part.release()))
            .value();
    out.push_back(Fixture{"grid_unconstrained", std::move(policy), grid_data,
                          kGridRefusals});
  }
  {
    auto part = PartitionGraph::UniformGrid(grid, {2, 2}).value();
    ConstraintSet cs;
    CountQuery corner("corner", [grid](ValueIndex x) {
      return grid->Coordinate(x, 0) < 2 && grid->Coordinate(x, 1) < 2;
    });
    const uint64_t answer = corner.Evaluate(grid_data);
    cs.AddWithAnswer(std::move(corner), answer);
    Policy policy =
        Policy::Create(grid,
                       std::shared_ptr<const SecretGraph>(part.release()),
                       std::move(cs))
            .value();
    out.push_back(Fixture{"grid_constrained", std::move(policy),
                          std::move(grid_data), kGridRefusals});
  }
  return out;
}

std::unique_ptr<ReleaseEngine> MakeEngine(
    const Policy& policy, const Dataset& data, ScanMode mode,
    std::shared_ptr<ThreadPool> pool = nullptr) {
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 10.0;
  options.scan_mode = mode;
  if (pool != nullptr) options.pool = std::move(pool);
  auto engine = ReleaseEngine::Create(policy, data, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

void ExpectByteIdentical(const std::vector<QueryResponse>& got,
                         const std::vector<QueryResponse>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    const std::string at = context + ", query " + std::to_string(i) +
                           " (" + want[i].label + ")";
    EXPECT_EQ(got[i].status.code(), want[i].status.code()) << at;
    EXPECT_EQ(got[i].status.message(), want[i].status.message()) << at;
    EXPECT_EQ(got[i].label, want[i].label) << at;
    // operator== on doubles: bit-exact payloads, not approximate ones.
    EXPECT_EQ(got[i].values, want[i].values) << at;
    EXPECT_EQ(got[i].sensitivity, want[i].sensitivity) << at;
    EXPECT_EQ(got[i].cache_hit, want[i].cache_hit) << at;
    EXPECT_EQ(got[i].receipt.session, want[i].receipt.session) << at;
    EXPECT_EQ(got[i].receipt.charge_id, want[i].receipt.charge_id) << at;
    EXPECT_EQ(got[i].receipt.charged, want[i].receipt.charged) << at;
    EXPECT_EQ(got[i].receipt.epsilon, want[i].receipt.epsilon) << at;
    EXPECT_EQ(got[i].receipt.remaining, want[i].receipt.remaining) << at;
  }
}

TEST(ColumnarE2eTest, AllOpsByteIdenticalAcrossScanModesAndPoolSizes) {
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    // Reference transcript: the default configuration (shared scan,
    // engine-owned pool).
    auto reference_engine =
        MakeEngine(f.policy, f.data, ScanMode::kSharedColumnar);
    const std::vector<QueryResponse> reference =
        reference_engine->ServeBatch(WholeRegistryBatch());
    ASSERT_EQ(reference.size(),
              QueryOpRegistry::Global().KnownKinds().size());
    const double reference_spent = reference_engine->accountant().Spent("");
    // Exactly the fixture's expected-refusal set refuses; every other
    // kind serves. (Refusal CONTENT is checked in
    // constrained_ops_e2e_test and query_ops_test; here the set
    // membership plus the byte-identity sweep below pin that refusals
    // are mode- and pool-invariant too.)
    for (size_t i = 0; i < reference.size(); ++i) {
      const bool expect_refusal =
          std::find(f.expected_refusals.begin(), f.expected_refusals.end(),
                    reference[i].label) != f.expected_refusals.end();
      EXPECT_EQ(reference[i].status.ok(), !expect_refusal)
          << reference[i].label << ": " << reference[i].status.ToString();
    }
    EXPECT_GT(reference_spent, 0.0);

    for (ScanMode mode :
         {ScanMode::kRowMajor, ScanMode::kPerQueryColumnar,
          ScanMode::kSharedColumnar}) {
      for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
        const std::string context =
            "mode " + std::to_string(static_cast<int>(mode)) + ", pool " +
            std::to_string(pool_size);
        auto engine =
            MakeEngine(f.policy, f.data, mode,
                       std::make_shared<ThreadPool>(pool_size));
        const std::vector<QueryResponse> responses =
            engine->ServeBatch(WholeRegistryBatch());
        ExpectByteIdentical(responses, reference, context);
        // Identical receipts and identical ledger: the budget arithmetic
        // is exactly reproduced, not merely the payloads.
        EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), reference_spent)
            << context;
      }
    }
  }
}

TEST(ColumnarE2eTest, RepeatedBatchesStayIdenticalAcrossModes) {
  // The shared-scan engine caches its scan product across batches; the
  // row-major engine rescans per query. Three consecutive batches must
  // nonetheless produce one identical transcript — the cache can change
  // timings only.
  for (const Fixture& f : Fixtures()) {
    SCOPED_TRACE("fixture " + f.name);
    auto shared_engine =
        MakeEngine(f.policy, f.data, ScanMode::kSharedColumnar);
    auto row_engine = MakeEngine(f.policy, f.data, ScanMode::kRowMajor);
    for (int round = 0; round < 3; ++round) {
      const std::vector<QueryResponse> shared =
          shared_engine->ServeBatch(WholeRegistryBatch());
      const std::vector<QueryResponse> row =
          row_engine->ServeBatch(WholeRegistryBatch());
      ExpectByteIdentical(shared, row, "round " + std::to_string(round));
    }
    EXPECT_DOUBLE_EQ(shared_engine->accountant().Spent(""),
                     row_engine->accountant().Spent(""));
  }
}

TEST(ColumnarE2eTest, WireTranscriptIdenticalForRowAndSharedTenants) {
  // Two daemons, built identically except for the tenant's scan mode;
  // the same batch text must come back byte-identical over the wire —
  // the full e2e path (parse -> admit -> scan -> execute -> frame) is
  // representation-invariant.
  auto domain = LineDomain(16);
  Dataset data = MakeData(domain, 300, 13);
  auto part = PartitionGraph::UniformGrid(domain, {4}).value();
  Policy policy =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part.release()))
          .value();
  const std::string batch_text = WholeRegistryBatchText();

  std::vector<std::vector<QueryResponse>> transcripts;
  for (ScanMode mode : {ScanMode::kRowMajor, ScanMode::kSharedColumnar}) {
    EngineHostOptions host_options;
    host_options.num_threads = 2;
    auto host = std::make_unique<EngineHost>(host_options);
    TenantOptions tenant;
    tenant.default_session_budget = 10.0;
    tenant.root_seed = kSeed;
    tenant.scan_mode = mode;
    ASSERT_TRUE(host->AddTenant("p", "d", policy, data, tenant).ok());

    auto server = BlowfishServer::Start(host.get());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client =
        BlowfishClient::Connect("127.0.0.1", (*server)->port(), "p", "d");
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto responses = (*client)->SubmitBatchText(batch_text);
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    EXPECT_TRUE((*client)->Bye().ok());
    (*server)->Stop();
    transcripts.push_back(std::move(*responses));
  }
  ExpectByteIdentical(transcripts[1], transcripts[0], "row vs shared");
}

}  // namespace
}  // namespace blowfish
