// Cross-module integration tests: full pipelines from synthetic data
// through policies, sensitivity, mechanisms, and post-processing — the
// flows the examples and benches exercise, with assertions.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/attack.h"
#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/privacy_loss.h"
#include "core/sensitivity.h"
#include "data/synthetic.h"
#include "mech/hierarchical.h"
#include "mech/kmeans.h"
#include "mech/laplace.h"
#include "mech/ordered.h"
#include "mech/ordered_hierarchical.h"
#include "util/stats.h"

namespace blowfish {
namespace {

// Pipeline 1: CDF release on sparse salary-like data under a line policy,
// with accuracy far better than the DP hierarchical baseline (Sec 7.1).
TEST(IntegrationTest, CdfReleasePipeline) {
  Random rng(1);
  Dataset data = GenerateAdultCapitalLossLike(20000, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  Policy line = Policy::Line(data.domain_ptr()).value();
  const double eps = 0.5;

  double ordered_mse = 0.0, hierarchical_mse = 0.0;
  std::vector<double> truth = hist.CumulativeSums();
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    auto om = OrderedMechanism(hist, line, eps, rng).value();
    ordered_mse += MeanSquaredError(truth, om.inferred_cumulative);

    HierarchicalOptions opts;
    auto hm = HierarchicalMechanism::Release(hist, eps, opts, rng).value();
    std::vector<double> hm_cum(hist.size());
    for (size_t j = 0; j < hist.size(); ++j) {
      hm_cum[j] = hm.CumulativeCount(j).value();
    }
    hierarchical_mse += MeanSquaredError(truth, hm_cum);
  }
  // On data with p << |T| the ordered mechanism dominates by a wide
  // margin; require at least 5x.
  EXPECT_LT(ordered_mse, hierarchical_mse / 5.0);
}

// Pipeline 2: k-means error ordering across policies of decreasing
// strength (the qualitative shape of Fig 1(a)-(c)).
TEST(IntegrationTest, KMeansPolicyStrengthOrdering) {
  Random rng(2);
  Dataset data = GenerateGaussianClusters(1000, 4, 32, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const double eps = 0.4;

  auto mean_objective = [&](const Policy& p) {
    double total = 0.0;
    const int reps = 12;
    for (int rep = 0; rep < reps; ++rep) {
      total += BlowfishKMeans(data, p, eps, opts, rng).value().objective;
    }
    return total / reps;
  };
  double obj_full =
      mean_objective(Policy::FullDomain(data.domain_ptr()).value());
  double obj_theta_small =
      mean_objective(Policy::DistanceThreshold(data.domain_ptr(), 0.1)
                         .value());
  // Weaker sensitive-information specification -> markedly less noise.
  EXPECT_LT(obj_theta_small, obj_full);
}

// Pipeline 3: histograms under a partition policy release the partition
// counts exactly, and k-means under the finest partition is noiseless
// (the partition|120000 observation of Sec 6.1).
TEST(IntegrationTest, FinestPartitionIsNoiseless) {
  Random rng(3);
  Dataset data = GenerateGaussianClusters(500, 4, 16, rng).value();
  auto dom = data.domain_ptr();
  // One cell per domain value: both q_size and q_sum have sensitivity 0.
  std::vector<uint64_t> cells(dom->num_attributes());
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = dom->attribute(i).cardinality;
  }
  Policy finest = Policy::GridPartition(dom, cells).value();
  EXPECT_DOUBLE_EQ(QSumSensitivity(finest).value(), 0.0);
  EXPECT_DOUBLE_EQ(QSizeSensitivity(finest.graph()), 0.0);

  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  Random rng_a(77), rng_b(77);
  auto noiseless =
      BlowfishKMeans(data, finest, 0.1, opts, rng_a).value();
  auto nonprivate = LloydKMeans(data.Points(), opts, rng_b).value();
  // With zero sensitivity the "private" run degenerates to Lloyd's.
  EXPECT_NEAR(noiseless.objective, nonprivate.objective,
              1e-6 * std::max(1.0, nonprivate.objective));
}

// Pipeline 4: the Sec 3.2 story end-to-end. DP noisy counts + public
// pairwise-sum constraints reconstruct the table; calibrating to the
// policy-graph sensitivity under those constraints defeats the attack.
TEST(IntegrationTest, ConstraintAttackAndDefense) {
  Random rng(4);
  const size_t k = 128;
  std::vector<double> counts(k);
  for (size_t i = 0; i < k; ++i) counts[i] = 20.0 + (i % 5);
  const double eps = 1.0;

  // Attack on plain DP (sensitivity-2 histogram noise).
  auto attacked = RunAveragingAttack(counts, 2.0 / eps, 60, rng).value();
  EXPECT_GT(attacked.fraction_exact, 0.8);  // near-total reconstruction

  // Defense: under Blowfish with the k-1 pairwise-sum constraints the
  // policy graph is a path q_1 -> q_2 -> ... (each adjacent-pair
  // constraint lifted/lowered), and the calibrated noise grows with the
  // longest chain, preventing the variance-averaging attack from
  // converging to the true counts.
  ConstraintSet cs;
  for (size_t i = 0; i + 1 < 8; ++i) {
    cs.Add(CountQuery(
        "pair" + std::to_string(i),
        [i](ValueIndex x) { return x == i || x == i + 1; }));
  }
  LineGraph g(8);
  PolicyGraph pg = PolicyGraph::Build(cs, g, 100000).value();
  double sens = pg.HistogramSensitivityBound().value();
  // The chain structure forces sensitivity well above the DP value 2.
  EXPECT_GE(sens, 4.0);
}

// Pipeline 5: composition accounting across a realistic release session.
TEST(IntegrationTest, AccountantTracksSession) {
  PrivacyAccountant acct;
  ASSERT_TRUE(acct.SpendSequential(0.5, "kmeans").ok());
  ASSERT_TRUE(acct.SpendSequential(0.3, "cdf").ok());
  ASSERT_TRUE(acct.SpendParallel({0.2, 0.2, 0.2}, "per-region hist").ok());
  EXPECT_NEAR(acct.TotalEpsilon(), 1.0, 1e-12);
}

// Pipeline 6: range queries on twitter-latitude-like data across the OH
// theta sweep — error must not increase as theta shrinks (Fig 2(c) shape).
TEST(IntegrationTest, RangeQueryErrorShrinksWithTheta) {
  Random rng(5);
  Dataset data = GenerateTwitterLatitudeLike(20000, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  auto dom = data.domain_ptr();
  const double eps = 0.5;
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;

  Random qrng(6);
  std::vector<std::pair<size_t, size_t>> queries;
  for (int i = 0; i < 60; ++i) {
    auto a = static_cast<size_t>(qrng.UniformInt(0, 399));
    auto b = static_cast<size_t>(qrng.UniformInt(0, 399));
    queries.emplace_back(std::min(a, b), std::max(a, b));
  }
  auto mse_for = [&](const Policy& p) {
    double total = 0.0;
    const int reps = 15;
    for (int rep = 0; rep < reps; ++rep) {
      auto m =
          OrderedHierarchicalMechanism::Release(hist, p, eps, opts, rng)
              .value();
      for (auto [lo, hi] : queries) {
        double truth = hist.RangeSum(lo, hi).value();
        double e = m.RangeQuery(lo, hi).value() - truth;
        total += e * e;
      }
    }
    return total / (reps * queries.size());
  };
  // theta = 5km (line graph granularity ~ one cell) vs full domain.
  double mse_small = mse_for(Policy::Line(dom).value());
  double mse_full = mse_for(Policy::FullDomain(dom).value());
  EXPECT_LT(mse_small, mse_full);
}

}  // namespace
}  // namespace blowfish
