#include "mech/ordered_hierarchical.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Histogram RandomData(size_t domain, size_t total, uint64_t seed) {
  Random rng(seed);
  Histogram h(domain);
  for (size_t i = 0; i < total; ++i) {
    h.Add(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1)));
  }
  return h;
}

// --- OHErrorModel (Eqns 13-15) ---

TEST(OHErrorModelTest, BoundaryCases) {
  // theta = |T|: c1 = 0 -> all budget to H.
  OHErrorModel at_full = OHErrorModel::Compute(1024, 1024, 16);
  EXPECT_DOUBLE_EQ(at_full.c1, 0.0);
  EXPECT_GT(at_full.c2, 0.0);
  EXPECT_DOUBLE_EQ(at_full.OptimalSFraction(), 0.0);
  // theta = 1: c2 = 0 -> all budget to S.
  OHErrorModel at_one = OHErrorModel::Compute(1024, 1, 16);
  EXPECT_GT(at_one.c1, 0.0);
  EXPECT_DOUBLE_EQ(at_one.c2, 0.0);
  EXPECT_DOUBLE_EQ(at_one.OptimalSFraction(), 1.0);
}

TEST(OHErrorModelTest, ConstantsMatchFormulas) {
  const size_t t = 4357, theta = 100, f = 16;
  OHErrorModel m = OHErrorModel::Compute(t, theta, f);
  double logf = std::log(100.0) / std::log(16.0);
  EXPECT_NEAR(m.c1, 4.0 * (4357.0 - 100.0) / 4358.0, 1e-9);
  EXPECT_NEAR(m.c2, 8.0 * 15.0 * logf * logf * logf * 4357.0 / 4358.0,
              1e-6);
}

TEST(OHErrorModelTest, OptimumMinimizesRangeError) {
  OHErrorModel m = OHErrorModel::Compute(4357, 100, 16);
  const double eps = 1.0;
  double star = m.OptimalSFraction();
  double best = m.RangeError(star * eps, (1.0 - star) * eps);
  EXPECT_NEAR(best, m.OptimalRangeError(eps), 1e-9);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_GE(m.RangeError(frac * eps, (1.0 - frac) * eps), best - 1e-9)
        << "frac " << frac;
  }
}

TEST(OHErrorModelTest, ZeroBudgetSideIsInfinite) {
  OHErrorModel m = OHErrorModel::Compute(4357, 100, 16);
  EXPECT_TRUE(std::isinf(m.RangeError(0.0, 1.0)));
  EXPECT_TRUE(std::isinf(m.RangeError(1.0, 0.0)));
}

// --- Release: structure ---

TEST(OrderedHierarchicalTest, StructureMatchesTheta) {
  auto dom = MakeLine(64);
  Policy p = Policy::DistanceThreshold(dom, 8.0).value();
  Histogram data = RandomData(64, 500, 3);
  Random rng(5);
  OrderedHierarchicalOptions opts;
  opts.fanout = 4;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  EXPECT_EQ(m.theta_steps(), 8u);
  EXPECT_EQ(m.num_s_nodes(), 8u);  // ceil(64/8)
  EXPECT_EQ(m.h_trees().size(), 8u);
  EXPECT_EQ(m.subtree_height(), 2u);  // log_4 8 -> ceil = 2
  EXPECT_NE(m.DescribeStructure().find("theta=8"), std::string::npos);
}

TEST(OrderedHierarchicalTest, ThetaOneDegeneratesToOrdered) {
  auto dom = MakeLine(32);
  Policy p = Policy::Line(dom).value();
  Histogram data = RandomData(32, 200, 7);
  Random rng(9);
  OrderedHierarchicalOptions opts;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  EXPECT_EQ(m.theta_steps(), 1u);
  EXPECT_EQ(m.num_s_nodes(), 32u);
  EXPECT_TRUE(m.h_trees().empty());
}

TEST(OrderedHierarchicalTest, ThetaFullDegeneratesToHierarchical) {
  auto dom = MakeLine(32);
  Policy p = Policy::FullDomain(dom).value();
  Histogram data = RandomData(32, 200, 7);
  Random rng(9);
  OrderedHierarchicalOptions opts;
  opts.fanout = 4;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  EXPECT_EQ(m.theta_steps(), 32u);
  EXPECT_EQ(m.num_s_nodes(), 1u);
  EXPECT_EQ(m.h_trees().size(), 1u);
}

TEST(OrderedHierarchicalTest, Validation) {
  auto dom = MakeLine(32);
  Policy p = Policy::Line(dom).value();
  Histogram data(32);
  Random rng(1);
  OrderedHierarchicalOptions opts;
  EXPECT_FALSE(
      OrderedHierarchicalMechanism::Release(data, p, 0.0, opts, rng).ok());
  Histogram wrong(16);
  EXPECT_FALSE(
      OrderedHierarchicalMechanism::Release(wrong, p, 1.0, opts, rng).ok());
  auto grid =
      std::make_shared<const Domain>(Domain::Grid(6, 2).value());
  Policy p2d = Policy::DistanceThreshold(grid, 2.0).value();
  Histogram data2d(36);
  EXPECT_FALSE(
      OrderedHierarchicalMechanism::Release(data2d, p2d, 1.0, opts, rng)
          .ok());
}

TEST(OrderedHierarchicalTest, SubResolutionThetaRejected) {
  auto dom = std::make_shared<const Domain>(
      Domain::Line(32, /*scale=*/10.0).value());
  Policy p = Policy::DistanceThreshold(dom, 5.0).value();  // < scale
  Histogram data(32);
  Random rng(1);
  OrderedHierarchicalOptions opts;
  EXPECT_EQ(OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --- Release: accuracy ---

class OHAccuracyTest : public ::testing::TestWithParam<double /*theta*/> {};

TEST_P(OHAccuracyTest, CumulativeCountsAreUnbiased) {
  const double theta = GetParam();
  auto dom = MakeLine(128);
  Policy p = Policy::DistanceThreshold(dom, theta).value();
  Histogram data = RandomData(128, 2000, 21);
  std::vector<double> truth = data.CumulativeSums();
  Random rng(23);
  OrderedHierarchicalOptions opts;
  opts.fanout = 4;
  std::vector<double> errors;
  for (int rep = 0; rep < 200; ++rep) {
    auto m = OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng)
                 .value();
    errors.push_back(m.CumulativeCount(77).value() - truth[77]);
  }
  EXPECT_NEAR(Mean(errors), 0.0, 2.5) << "theta " << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, OHAccuracyTest,
                         ::testing::Values(1.0, 4.0, 16.0, 128.0));

// Release + querying must be consistent across fan-outs, including ones
// that leave ragged last blocks.
class OHFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OHFanoutTest, AllRangeQueriesAnswerable) {
  const size_t fanout = GetParam();
  auto dom = MakeLine(100);  // blocks of 7: ragged everywhere
  Policy p = Policy::DistanceThreshold(dom, 7.0).value();
  Histogram data = RandomData(100, 1500, 61);
  Random rng(67);
  OrderedHierarchicalOptions opts;
  opts.fanout = fanout;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  for (size_t lo = 0; lo < 100; lo += 13) {
    for (size_t hi = lo; hi < 100; hi += 17) {
      ASSERT_TRUE(m.RangeQuery(lo, hi).ok()) << fanout;
    }
  }
  // Full-domain cumulative count should be near n.
  EXPECT_NEAR(m.CumulativeCount(99).value(), 1500.0, 200.0) << fanout;
}

INSTANTIATE_TEST_SUITE_P(Fanouts, OHFanoutTest,
                         ::testing::Values(2, 3, 4, 16));

TEST(OrderedHierarchicalTest, RangeQueryMatchesCumulativeDifference) {
  auto dom = MakeLine(64);
  Policy p = Policy::DistanceThreshold(dom, 8.0).value();
  Histogram data = RandomData(64, 400, 31);
  Random rng(33);
  OrderedHierarchicalOptions opts;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  double direct = m.RangeQuery(10, 45).value();
  double via_cum =
      m.CumulativeCount(45).value() - m.CumulativeCount(9).value();
  EXPECT_NEAR(direct, via_cum, 1e-9);
  EXPECT_FALSE(m.RangeQuery(5, 4).ok());
  EXPECT_FALSE(m.RangeQuery(0, 64).ok());
}

// Small theta should beat the pure hierarchical strategy (theta = |T|),
// the headline of Fig 2(b)/2(c).
TEST(OrderedHierarchicalTest, SmallThetaBeatsFullTheta) {
  auto dom = MakeLine(1024);
  Histogram data = RandomData(1024, 5000, 41);
  const double eps = 0.5;
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;
  auto run = [&](const Policy& p, uint64_t seed) {
    Random rng(seed);
    double mse = 0.0;
    Random qrng(99);  // same queries for both strategies
    std::vector<std::pair<size_t, size_t>> queries;
    for (int i = 0; i < 50; ++i) {
      size_t a = static_cast<size_t>(qrng.UniformInt(0, 1023));
      size_t b = static_cast<size_t>(qrng.UniformInt(0, 1023));
      queries.emplace_back(std::min(a, b), std::max(a, b));
    }
    const int reps = 40;
    for (int rep = 0; rep < reps; ++rep) {
      auto m = OrderedHierarchicalMechanism::Release(data, p, eps, opts, rng)
                   .value();
      for (auto [lo, hi] : queries) {
        double truth = data.RangeSum(lo, hi).value();
        double e = m.RangeQuery(lo, hi).value() - truth;
        mse += e * e;
      }
    }
    return mse / (reps * queries.size());
  };
  double mse_theta1 = run(Policy::Line(dom).value(), 1);
  double mse_full = run(Policy::FullDomain(dom).value(), 2);
  EXPECT_LT(mse_theta1, mse_full / 5.0);
}

// Consistency post-processing keeps outputs valid and roughly monotone.
TEST(OrderedHierarchicalTest, ConsistencyOptionRuns) {
  auto dom = MakeLine(64);
  Policy p = Policy::DistanceThreshold(dom, 8.0).value();
  Histogram data = RandomData(64, 400, 51);
  Random rng(53);
  OrderedHierarchicalOptions opts;
  opts.consistency = true;
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 1.0, opts, rng).value();
  // S-node prefix sequence must be non-decreasing after isotonization.
  for (size_t l = 1; l < m.s_nodes().size(); ++l) {
    EXPECT_GE(m.s_nodes()[l] + 1e-9, m.s_nodes()[l - 1]);
  }
}

}  // namespace
}  // namespace blowfish
