#include "mech/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace blowfish {
namespace {

// --- Haar transform ---

TEST(HaarTest, RoundTripPowerOfTwo) {
  Random rng(1);
  for (size_t n : {1, 2, 4, 8, 64, 1024}) {
    std::vector<double> values(n);
    for (double& v : values) v = rng.Uniform(-10, 10);
    std::vector<double> coef = HaarDecompose(values);
    ASSERT_EQ(coef.size(), n);
    std::vector<double> back = HaarReconstruct(coef);
    ASSERT_EQ(back.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], values[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(HaarTest, FirstCoefficientIsAverage) {
  std::vector<double> values = {1.0, 3.0, 5.0, 7.0};
  std::vector<double> coef = HaarDecompose(values);
  EXPECT_DOUBLE_EQ(coef[0], 4.0);
  // Root detail = (avg first half - avg second half) / 2 = (2 - 6)/2.
  EXPECT_DOUBLE_EQ(coef[1], -2.0);
}

TEST(HaarTest, ConstantVectorHasZeroDetails) {
  std::vector<double> values(16, 3.5);
  std::vector<double> coef = HaarDecompose(values);
  EXPECT_DOUBLE_EQ(coef[0], 3.5);
  for (size_t i = 1; i < coef.size(); ++i) {
    EXPECT_DOUBLE_EQ(coef[i], 0.0);
  }
}

// One-bucket change alters the average by 1/N and one detail per level
// with magnitude 2^-(m-l) — the sensitivities the mechanism calibrates
// to.
TEST(HaarTest, SingleBucketSensitivityPattern) {
  const size_t n = 16;  // m = 4
  std::vector<double> base(n, 0.0);
  std::vector<double> bumped = base;
  bumped[5] += 1.0;
  std::vector<double> c0 = HaarDecompose(base);
  std::vector<double> c1 = HaarDecompose(bumped);
  EXPECT_NEAR(std::fabs(c1[0] - c0[0]), 1.0 / 16, 1e-12);
  // Count nonzero detail diffs per level and check magnitudes.
  size_t offset = 1;
  const size_t m = 4;
  for (size_t l = 0; l < m; ++l) {
    size_t count = size_t{1} << l;
    size_t changed = 0;
    for (size_t i = 0; i < count; ++i) {
      double diff = std::fabs(c1[offset + i] - c0[offset + i]);
      if (diff > 1e-12) {
        ++changed;
        EXPECT_NEAR(diff, 1.0 / static_cast<double>(size_t{1} << (m - l)),
                    1e-12)
            << "level " << l;
      }
    }
    EXPECT_EQ(changed, 1u) << "level " << l;
    offset += count;
  }
}

// --- Mechanism ---

TEST(WaveletMechanismTest, Validation) {
  Random rng(1);
  Histogram empty(0);
  EXPECT_FALSE(WaveletMechanism::Release(empty, 1.0, rng).ok());
  Histogram data(10);
  EXPECT_FALSE(WaveletMechanism::Release(data, 0.0, rng).ok());
  EXPECT_TRUE(WaveletMechanism::Release(data, 1.0, rng).ok());
}

TEST(WaveletMechanismTest, PadsToPowerOfTwo) {
  Random rng(2);
  Histogram data(4357);
  auto m = WaveletMechanism::Release(data, 1.0, rng).value();
  EXPECT_EQ(m.domain_size(), 4357u);
  EXPECT_EQ(m.padded_size(), 8192u);
  EXPECT_EQ(m.height(), 13u);
}

TEST(WaveletMechanismTest, QueryBounds) {
  Random rng(3);
  Histogram data(100);
  auto m = WaveletMechanism::Release(data, 1.0, rng).value();
  EXPECT_FALSE(m.RangeQuery(5, 4).ok());
  EXPECT_FALSE(m.RangeQuery(0, 100).ok());
  EXPECT_FALSE(m.CumulativeCount(100).ok());
  EXPECT_TRUE(m.RangeQuery(0, 99).ok());
}

TEST(WaveletMechanismTest, RangeQueriesUnbiased) {
  Random data_rng(4);
  Histogram data(256);
  for (int i = 0; i < 4000; ++i) {
    data.Add(static_cast<size_t>(data_rng.UniformInt(0, 255)));
  }
  double truth = data.RangeSum(30, 200).value();
  Random rng(5);
  std::vector<double> errors;
  for (int rep = 0; rep < 400; ++rep) {
    auto m = WaveletMechanism::Release(data, 1.0, rng).value();
    errors.push_back(m.RangeQuery(30, 200).value() - truth);
  }
  EXPECT_NEAR(Mean(errors), 0.0, 4.0);
}

TEST(WaveletMechanismTest, NoisyHistogramMatchesRangeQueries) {
  Random rng(6);
  Histogram data(64);
  data.Add(10, 100);
  auto m = WaveletMechanism::Release(data, 1.0, rng).value();
  std::vector<double> hist = m.NoisyHistogram();
  ASSERT_EQ(hist.size(), 64u);
  double direct = m.RangeQuery(5, 20).value();
  double summed = 0.0;
  for (size_t i = 5; i <= 20; ++i) summed += hist[i];
  EXPECT_NEAR(direct, summed, 1e-9);
}

// Privacy accounting: for any two histograms differing by one unit move,
// the sum over coefficients of |delta| / scale must be <= eps. Checked
// exhaustively over all (x, y) moves in a small domain.
TEST(WaveletMechanismTest, PrivacyBudgetCoversAllMoves) {
  const size_t n = 16;  // padded = 16, m = 4
  const size_t m = 4;
  const double eps = 0.8;
  const double eps_slot = eps / (2.0 * (m + 1));
  auto log_ratio = [&](size_t from, size_t to) {
    std::vector<double> h1(n, 2.0), h2(n, 2.0);
    h2[from] -= 1.0;
    h2[to] += 1.0;
    std::vector<double> c1 = HaarDecompose(h1);
    std::vector<double> c2 = HaarDecompose(h2);
    double total =
        std::fabs(c1[0] - c2[0]) / ((1.0 / n) / eps_slot);
    size_t offset = 1;
    for (size_t l = 0; l < m; ++l) {
      size_t count = size_t{1} << l;
      double sens = 1.0 / static_cast<double>(size_t{1} << (m - l));
      for (size_t i = 0; i < count; ++i) {
        total += std::fabs(c1[offset + i] - c2[offset + i]) /
                 (sens / eps_slot);
      }
      offset += count;
    }
    return total;
  };
  double worst = 0.0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      if (x != y) worst = std::max(worst, log_ratio(x, y));
    }
  }
  EXPECT_LE(worst, eps + 1e-9);
}

// Error comparison: the wavelet baseline should be in the same regime as
// the hierarchical mechanism (both polylog), far above the line-graph
// Ordered Mechanism on sparse data — context for Fig 2.
TEST(WaveletMechanismTest, ErrorRegimeSanity) {
  Random data_rng(7);
  Histogram data(1024);
  for (int i = 0; i < 10000; ++i) {
    data.Add(static_cast<size_t>(data_rng.UniformInt(0, 1023)));
  }
  Random rng(8);
  double mse = 0.0;
  double truth = data.RangeSum(100, 800).value();
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    auto m = WaveletMechanism::Release(data, 1.0, rng).value();
    double e = m.RangeQuery(100, 800).value() - truth;
    mse += e * e;
  }
  mse /= reps;
  // Very loose sanity window: positive, and far below per-bucket naive
  // summation error (701 buckets * 2*(2/eps)^2 = 5608).
  EXPECT_GT(mse, 1.0);
  EXPECT_LT(mse, 5608.0);
}

}  // namespace
}  // namespace blowfish
