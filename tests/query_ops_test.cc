#include "engine/ops/query_op.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/secret_graph.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "mech/wavelet.h"
#include "util/random.h"

namespace blowfish {
namespace {

constexpr uint64_t kSeed = 97;

std::shared_ptr<const Domain> LineDomain(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

Dataset MakeData(const std::shared_ptr<const Domain>& domain, size_t n,
                 uint64_t seed = 7) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(
        rng.UniformInt(0, static_cast<int64_t>(domain->size()) - 1)));
  }
  return Dataset::Create(domain, std::move(tuples)).value();
}

std::unique_ptr<ReleaseEngine> MakeEngine(const Policy& policy,
                                          const Dataset& data,
                                          double budget = 100.0) {
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = budget;
  auto engine = ReleaseEngine::Create(policy, data, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

TEST(QueryOpRegistryTest, AllBuiltinKindsRegistered) {
  auto& registry = QueryOpRegistry::Global();
  for (const char* kind :
       {"histogram", "cell_histogram", "range", "cdf", "quantiles",
        "kmeans", "mean", "wavelet_range"}) {
    EXPECT_TRUE(registry.Has(kind)) << kind;
  }
  EXPECT_FALSE(registry.Has("frobnicate"));
  EXPECT_EQ(registry.Create("frobnicate").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryOpRegistryTest, EveryRegisteredOpParsesItsOwnKindNameLine) {
  // Round-trip: for every registered kind, a batch-file line built from
  // the op's own KindName() and ExampleArgs() parses back to that op.
  // The registry is the single source of truth for the name <-> op map —
  // there is no separate kind table that could drift.
  auto& registry = QueryOpRegistry::Global();
  const std::vector<std::string> kinds = registry.KnownKinds();
  ASSERT_GE(kinds.size(), 8u);
  for (const std::string& kind : kinds) {
    auto op = registry.Create(kind);
    ASSERT_TRUE(op.ok()) << kind;
    EXPECT_EQ((*op)->KindName(), kind);
    std::string line = kind + " eps=0.1";
    const std::string example = (*op)->ExampleArgs();
    if (!example.empty()) line += " " + example;
    auto requests = ParseBatchRequests(line + "\n");
    ASSERT_TRUE(requests.ok())
        << kind << ": " << requests.status().ToString();
    ASSERT_EQ(requests->size(), 1u);
    EXPECT_EQ(QueryKindName((*requests)[0]), kind);
    EXPECT_DOUBLE_EQ((*requests)[0].epsilon, 0.1);
  }
}

TEST(QueryOpRegistryTest, ParsedAndConstructedRequestsAgreeBitForBit) {
  // The batch-file path and the MakeQueryRequest path must produce the
  // same op state: identical engines serving the two batches draw
  // identical noise and answers.
  auto domain = LineDomain(64);
  Policy policy = Policy::Line(domain).value();
  Dataset data = MakeData(domain, 400);

  auto parsed = ParseBatchRequests(
      "range eps=0.2 lo=5 hi=50\n"
      "quantiles eps=0.2 qs=0.1,0.9\n"
      "wavelet_range eps=0.3 lo=2 hi=30\n"
      "mean eps=0.2\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<QueryRequest> constructed;
  constructed.push_back(
      MakeQueryRequest("range", 0.2, {{"lo", "5"}, {"hi", "50"}}).value());
  constructed.push_back(
      MakeQueryRequest("quantiles", 0.2, {{"qs", "0.1,0.9"}}).value());
  constructed.push_back(
      MakeQueryRequest("wavelet_range", 0.3, {{"lo", "2"}, {"hi", "30"}})
          .value());
  constructed.push_back(MakeQueryRequest("mean", 0.2).value());

  auto from_parsed = MakeEngine(policy, data)->ServeBatch(*parsed);
  auto from_constructed = MakeEngine(policy, data)->ServeBatch(constructed);
  ASSERT_EQ(from_parsed.size(), from_constructed.size());
  for (size_t i = 0; i < from_parsed.size(); ++i) {
    ASSERT_TRUE(from_parsed[i].status.ok())
        << i << ": " << from_parsed[i].status.ToString();
    ASSERT_TRUE(from_constructed[i].status.ok()) << i;
    EXPECT_EQ(from_parsed[i].values, from_constructed[i].values)
        << "query " << i;
  }
}

TEST(MeanOpTest, EdgelessPolicyReleasesExactMeanForFree) {
  auto domain = LineDomain(32);
  // theta < scale: no edges, S(mean, P) = 0, exact release at eps = 0.
  Policy policy = Policy::DistanceThreshold(domain, 0.5).value();
  Dataset data = MakeData(domain, 200);
  auto hist = data.CompleteHistogram().value();
  double sum = 0.0;
  for (size_t x = 0; x < hist.size(); ++x) {
    sum += static_cast<double>(x) * hist[x];
  }
  auto engine = MakeEngine(policy, data, 0.0);
  auto responses =
      engine->ServeBatch({MakeQueryRequest("mean", 0.0).value()});
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status.ToString();
  EXPECT_DOUBLE_EQ(responses[0].sensitivity, 0.0);
  ASSERT_EQ(responses[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0].values[0], sum / data.size());
}

TEST(MeanOpTest, SensitivityIsPolicySpecific) {
  auto domain = LineDomain(32);
  Dataset data = MakeData(domain, 200);
  // Line graph: adjacent values differ by one scale unit -> S = 1.
  auto line = MakeEngine(Policy::Line(domain).value(), data);
  auto from_line =
      line->ServeBatch({MakeQueryRequest("mean", 0.5).value()});
  ASSERT_TRUE(from_line[0].status.ok())
      << from_line[0].status.ToString();
  EXPECT_DOUBLE_EQ(from_line[0].sensitivity, 1.0);
  // Full-domain secrets: the farthest pair differs by |T| - 1.
  auto full = MakeEngine(Policy::FullDomain(domain).value(), data);
  auto from_full =
      full->ServeBatch({MakeQueryRequest("mean", 0.5).value()});
  ASSERT_TRUE(from_full[0].status.ok())
      << from_full[0].status.ToString();
  EXPECT_DOUBLE_EQ(from_full[0].sensitivity, 31.0);
}

TEST(MeanOpTest, BatchFileErrorPaths) {
  // Unknown keys for the kind are parse errors, not silent drops.
  EXPECT_FALSE(ParseBatchRequests("mean eps=0.1 cells=0\n").ok());
  EXPECT_FALSE(ParseBatchRequests("mean eps=0.1 lo=1 hi=2\n").ok());
  EXPECT_FALSE(ParseBatchRequests("mean eps=abc\n").ok());
  // 2-D domain: refused at validation, never charged.
  auto grid = std::make_shared<const Domain>(Domain::Grid(4, 2).value());
  Policy policy = Policy::FullDomain(grid).value();
  Dataset data = MakeData(grid, 100);
  auto engine = MakeEngine(policy, data);
  auto responses =
      engine->ServeBatch({MakeQueryRequest("mean", 0.5).value()});
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.0);
}

TEST(MeanOpTest, ConstrainedPolicyServedWithChainBound) {
  // Partition Line(8) into cells {0..3} / {4..7}; one pinned count
  // query q = #(x < 2). A constrained neighbour step is a lift + a
  // compensating lower, at least one of which is a G^P edge while the
  // other may change a tuple between ANY two values (compensations are
  // not confined to E(G)). For this scalar query the bound accumulates
  // *signed* per-move deltas v(y) - v(x): a lift's delta (toward
  // {0, 1}) partly cancels a lower's (away from it), so the heaviest
  // chain nets lift 2 -> 1 (delta -1) plus lower 0 -> 7 (delta +7)
  // = 6 — realized by the Def 4.1 neighbours {2, 0} vs {1, 7} — where
  // the old per-move-magnitude sum charged 3 + 7 = 10. The randomized
  // ValueWeightedChainBoundDominatesOracle seeds certify the dominance
  // direction, and SignedScalarBoundTightensMagnitudeBound pins the
  // signed <= magnitude ordering.
  auto domain = LineDomain(8);
  auto part = PartitionGraph::UniformGrid(domain, {2}).value();
  ConstraintSet constraints;
  constraints.AddWithAnswer(
      CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  Policy policy =
      Policy::Create(domain,
                     std::shared_ptr<const SecretGraph>(part.release()),
                     std::move(constraints))
          .value();
  Dataset data = MakeData(domain, 100);
  auto engine = MakeEngine(policy, data);
  auto responses =
      engine->ServeBatch({MakeQueryRequest("mean", 0.5).value()});
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status.ToString();
  EXPECT_DOUBLE_EQ(responses[0].sensitivity, 6.0);
  EXPECT_EQ(responses[0].values.size(), 1u);
}

TEST(WaveletRangeOpTest, MatchesDirectMechanism) {
  auto domain = LineDomain(64);
  Policy policy = Policy::FullDomain(domain).value();
  Dataset data = MakeData(domain, 400);
  auto hist = data.CompleteHistogram().value();

  auto engine = MakeEngine(policy, data);
  auto responses = engine->ServeBatch(
      {MakeQueryRequest("wavelet_range", 0.4, {{"lo", "10"}, {"hi", "40"}})
           .value()});
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status.ToString();
  EXPECT_DOUBLE_EQ(responses[0].sensitivity, 2.0);

  // First query of the engine -> RNG stream 0 of the root seed; the
  // direct mechanism call with the same forked RNG is bit-identical.
  Random direct_rng = Random(kSeed).Fork(uint64_t{0});
  auto direct = WaveletMechanism::Release(hist, 0.4, direct_rng);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(responses[0].values,
            std::vector<double>{direct->RangeQuery(10, 40).value()});
}

TEST(WaveletRangeOpTest, BatchFileErrorPaths) {
  EXPECT_FALSE(ParseBatchRequests("wavelet_range eps=0.1 lo=x hi=2\n").ok());
  EXPECT_FALSE(ParseBatchRequests("wavelet_range eps=0.1 qs=0.5\n").ok());
  EXPECT_FALSE(
      ParseBatchRequests("wavelet_range eps=0.1 lo=-1 hi=2\n").ok());
  // Out-of-domain range: admitted (the shape is fine), fails at
  // execution, and the charge comes back.
  auto domain = LineDomain(32);
  Policy policy = Policy::FullDomain(domain).value();
  Dataset data = MakeData(domain, 200);
  auto engine = MakeEngine(policy, data, 1.0);
  auto responses = engine->ServeBatch(
      {MakeQueryRequest("wavelet_range", 0.3, {{"lo", "5"}, {"hi", "900"}})
           .value()});
  ASSERT_FALSE(responses[0].status.ok());
  EXPECT_TRUE(responses[0].values.empty());
  EXPECT_TRUE(responses[0].receipt.refunded);
  EXPECT_DOUBLE_EQ(engine->accountant().Spent(""), 0.0);
  // 2-D domain: refused at validation.
  auto grid = std::make_shared<const Domain>(Domain::Grid(4, 2).value());
  auto grid_engine =
      MakeEngine(Policy::FullDomain(grid).value(), MakeData(grid, 100));
  auto refused = grid_engine->ServeBatch(
      {MakeQueryRequest("wavelet_range", 0.3, {{"lo", "0"}, {"hi", "1"}})
           .value()});
  EXPECT_EQ(refused[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryOpTest, KeyValueBagRejectsLeftoversAndKeepsLastValue) {
  KeyValueBag bag("on line 1");
  bag.Add("lo", "1");
  bag.Add("lo", "2");
  bag.Add("mystery", "3");
  size_t lo = 0;
  ASSERT_TRUE(bag.TakeIndex("lo", &lo).ok());
  EXPECT_EQ(lo, 2u);  // repeated keys: last one wins
  Status leftover = bag.ExpectEmpty("range");
  EXPECT_EQ(leftover.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(leftover.message().find("mystery"), std::string::npos);
}

}  // namespace
}  // namespace blowfish
