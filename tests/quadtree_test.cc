#include "mech/quadtree.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeGrid(uint64_t m) {
  return std::make_shared<const Domain>(Domain::Grid(m, 2).value());
}

Dataset UniformPoints(std::shared_ptr<const Domain> dom, size_t n,
                      uint64_t seed) {
  Random rng(seed);
  std::vector<ValueIndex> tuples;
  uint64_t m = dom->attribute(0).cardinality;
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    uint64_t y = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    tuples.push_back(dom->Encode({x, y}));
  }
  return Dataset::Create(dom, tuples).value();
}

TEST(QuadtreeTest, Validation) {
  auto dom = MakeGrid(16);
  Dataset data = UniformPoints(dom, 100, 1);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(2);
  QuadtreeOptions opts;
  EXPECT_FALSE(QuadtreeMechanism::Release(data, p, 0.0, opts, rng).ok());
  opts.depth = 2;  // 4x4 grid cannot resolve 16x16 domain
  EXPECT_FALSE(QuadtreeMechanism::Release(data, p, 1.0, opts, rng).ok());
  opts.depth = 0;
  EXPECT_TRUE(QuadtreeMechanism::Release(data, p, 1.0, opts, rng).ok());
  // 1-D domain rejected.
  auto line = std::make_shared<const Domain>(Domain::Line(16).value());
  Dataset line_data = Dataset::Create(line, {0}).value();
  Policy line_p = Policy::FullDomain(line).value();
  EXPECT_FALSE(
      QuadtreeMechanism::Release(line_data, line_p, 1.0, opts, rng).ok());
}

TEST(QuadtreeTest, DepthChosenFromDomain) {
  auto dom = MakeGrid(20);  // pad to 32 -> depth 5
  Dataset data = UniformPoints(dom, 10, 3);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(4);
  QuadtreeOptions opts;
  auto m = QuadtreeMechanism::Release(data, p, 1.0, opts, rng).value();
  EXPECT_EQ(m.depth(), 5u);
  EXPECT_EQ(m.exact_levels(), 0u);  // full graph: only the root is exact
}

TEST(QuadtreeTest, RangeCountBounds) {
  auto dom = MakeGrid(16);
  Dataset data = UniformPoints(dom, 100, 5);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(6);
  QuadtreeOptions opts;
  auto m = QuadtreeMechanism::Release(data, p, 1.0, opts, rng).value();
  EXPECT_FALSE(m.RangeCount(Rectangle{{0}, {1}}).ok());          // arity
  EXPECT_FALSE(m.RangeCount(Rectangle{{5, 0}, {4, 1}}).ok());    // lo > hi
  EXPECT_FALSE(m.RangeCount(Rectangle{{0, 0}, {16, 1}}).ok());   // outside
  EXPECT_TRUE(m.RangeCount(Rectangle{{0, 0}, {15, 15}}).ok());
}

TEST(QuadtreeTest, RangeCountsUnbiased) {
  auto dom = MakeGrid(32);
  Dataset data = UniformPoints(dom, 3000, 7);
  Policy p = Policy::FullDomain(dom).value();
  Rectangle q{{3, 5}, {20, 27}};
  // True count.
  double truth = 0.0;
  for (ValueIndex t : data.tuples()) {
    if (q.Contains(*dom, t)) truth += 1.0;
  }
  Random rng(8);
  QuadtreeOptions opts;
  std::vector<double> errors;
  const int reps = 500;
  for (int rep = 0; rep < reps; ++rep) {
    auto m = QuadtreeMechanism::Release(data, p, 1.0, opts, rng).value();
    errors.push_back(m.RangeCount(q).value() - truth);
  }
  // Zero-mean within 4 standard errors.
  double stderr_bound =
      4.0 * std::sqrt(Variance(errors) / static_cast<double>(reps));
  EXPECT_NEAR(Mean(errors), 0.0, stderr_bound);
}

TEST(QuadtreeTest, FullCoverageQueryIsRootExact) {
  auto dom = MakeGrid(16);
  Dataset data = UniformPoints(dom, 500, 9);
  Policy p = Policy::FullDomain(dom).value();
  Random rng(10);
  QuadtreeOptions opts;
  auto m = QuadtreeMechanism::Release(data, p, 0.1, opts, rng).value();
  // The whole padded grid is the root node = public total: exact even at
  // tiny eps.
  double whole = m.RangeCount(Rectangle{{0, 0}, {15, 15}}).value();
  EXPECT_DOUBLE_EQ(whole, 500.0);
}

// --- Partition-policy exact levels ---

TEST(QuadtreeTest, ExactLevelsForAlignedPartition) {
  auto dom = MakeGrid(16);  // depth 4
  // 4x4 partition cells of 4x4 grid points: nodes of side >= 4 contain
  // whole cells -> levels 0..2 exact (sides 16, 8, 4).
  Policy p = Policy::GridPartition(dom, {4, 4}).value();
  EXPECT_EQ(QuadtreeMechanism::ExactLevelsForPolicy(p, 4), 2u);
  // Finest partition (every value its own cell): all levels exact.
  Policy finest = Policy::GridPartition(dom, {16, 16}).value();
  EXPECT_EQ(QuadtreeMechanism::ExactLevelsForPolicy(finest, 4), 4u);
  // Non-power-of-two blocks (ceil(16/3) = 6): no alignment.
  Policy odd = Policy::GridPartition(dom, {3, 3}).value();
  EXPECT_EQ(QuadtreeMechanism::ExactLevelsForPolicy(odd, 4), 0u);
  // cells = 5 gives blocks of ceil(16/5) = 4 -> aligned like 4x4 cells.
  Policy five = Policy::GridPartition(dom, {5, 5}).value();
  EXPECT_EQ(QuadtreeMechanism::ExactLevelsForPolicy(five, 4), 2u);
  // Full graph: nothing exact.
  EXPECT_EQ(QuadtreeMechanism::ExactLevelsForPolicy(
                Policy::FullDomain(dom).value(), 4),
            0u);
}

TEST(QuadtreeTest, AlignedCoarseQueriesAreExact) {
  auto dom = MakeGrid(16);
  Dataset data = UniformPoints(dom, 2000, 11);
  Policy p = Policy::GridPartition(dom, {4, 4}).value();
  Random rng(12);
  QuadtreeOptions opts;
  auto m = QuadtreeMechanism::Release(data, p, 0.05, opts, rng).value();
  EXPECT_EQ(m.exact_levels(), 2u);
  // A query that is a union of level-2 nodes (side 4) is answered from
  // exact counts even at eps = 0.05.
  Rectangle aligned{{0, 4}, {7, 11}};
  double truth = 0.0;
  for (ValueIndex t : data.tuples()) {
    if (aligned.Contains(*dom, t)) truth += 1.0;
  }
  EXPECT_DOUBLE_EQ(m.RangeCount(aligned).value(), truth);
}

TEST(QuadtreeTest, FinestPartitionIsFullyNoiseless) {
  auto dom = MakeGrid(16);
  Dataset data = UniformPoints(dom, 800, 13);
  Policy finest = Policy::GridPartition(dom, {16, 16}).value();
  Random rng(14);
  QuadtreeOptions opts;
  auto m =
      QuadtreeMechanism::Release(data, finest, 0.01, opts, rng).value();
  Rectangle q{{2, 3}, {9, 13}};
  double truth = 0.0;
  for (ValueIndex t : data.tuples()) {
    if (q.Contains(*dom, t)) truth += 1.0;
  }
  EXPECT_DOUBLE_EQ(m.RangeCount(q).value(), truth);
}

// Partition alignment reduces error for misaligned queries too (fewer
// noised levels on the decomposition path).
TEST(QuadtreeTest, PartitionPolicyReducesError) {
  auto dom = MakeGrid(64);
  Dataset data = UniformPoints(dom, 5000, 15);
  Rectangle q{{5, 9}, {50, 47}};
  double truth = 0.0;
  for (ValueIndex t : data.tuples()) {
    if (q.Contains(*dom, t)) truth += 1.0;
  }
  auto mse_for = [&](const Policy& p, uint64_t seed) {
    Random rng(seed);
    QuadtreeOptions opts;
    double mse = 0.0;
    const int reps = 150;
    for (int rep = 0; rep < reps; ++rep) {
      auto m = QuadtreeMechanism::Release(data, p, 0.5, opts, rng).value();
      double e = m.RangeCount(q).value() - truth;
      mse += e * e;
    }
    return mse / reps;
  };
  double mse_full = mse_for(Policy::FullDomain(dom).value(), 1);
  double mse_part =
      mse_for(Policy::GridPartition(dom, {8, 8}).value(), 2);
  EXPECT_LT(mse_part, mse_full);
}

// Privacy accounting: sum over noised nodes of |delta|/scale <= eps for
// any within-policy move, checked exhaustively on a small grid.
TEST(QuadtreeTest, BudgetCoversPartitionMoves) {
  auto dom = MakeGrid(8);  // depth 3
  Policy p = Policy::GridPartition(dom, {2, 2}).value();  // blocks 4x4
  const size_t depth = 3;
  const size_t exact = QuadtreeMechanism::ExactLevelsForPolicy(p, depth);
  ASSERT_EQ(exact, 1u);  // sides 8 (l=0), 4 (l=1) contain 4x4 blocks
  const double eps = 0.7;
  const size_t noised = depth - exact;
  const double per_node_eps = eps / (2.0 * noised);

  auto node_counts = [&](const std::vector<ValueIndex>& tuples) {
    std::vector<std::vector<double>> levels(depth + 1);
    for (size_t l = 0; l <= depth; ++l) {
      size_t w = size_t{1} << l;
      levels[l].assign(w * w, 0.0);
    }
    for (ValueIndex t : tuples) {
      uint64_t x = dom->Coordinate(t, 0);
      uint64_t y = dom->Coordinate(t, 1);
      for (size_t l = 0; l <= depth; ++l) {
        size_t shift = depth - l;
        size_t w = size_t{1} << l;
        levels[l][(x >> shift) * w + (y >> shift)] += 1.0;
      }
    }
    return levels;
  };
  double worst = 0.0;
  for (ValueIndex x = 0; x < dom->size(); ++x) {
    for (ValueIndex y = 0; y < dom->size(); ++y) {
      if (!p.graph().Adjacent(x, y)) continue;
      auto l1 = node_counts({x});
      auto l2 = node_counts({y});
      double spend = 0.0;
      for (size_t l = exact + 1; l <= depth; ++l) {
        for (size_t i = 0; i < l1[l].size(); ++i) {
          spend += std::fabs(l1[l][i] - l2[l][i]) * per_node_eps;
        }
      }
      worst = std::max(worst, spend);
      // Exact levels must genuinely be invariant under policy moves.
      for (size_t l = 0; l <= exact; ++l) {
        for (size_t i = 0; i < l1[l].size(); ++i) {
          ASSERT_DOUBLE_EQ(l1[l][i], l2[l][i]);
        }
      }
    }
  }
  EXPECT_LE(worst, eps + 1e-9);
}

}  // namespace
}  // namespace blowfish
