#include "core/neighbors.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.h"

namespace blowfish {
namespace {

std::shared_ptr<const Domain> MakeLine(uint64_t size) {
  return std::make_shared<const Domain>(Domain::Line(size).value());
}

TEST(EnumeratePossibleDatasetsTest, CountsWithoutConstraints) {
  auto dom = MakeLine(3);
  Policy p = Policy::FullDomain(dom).value();
  auto universe = EnumeratePossibleDatasets(p, 2, 1000).value();
  EXPECT_EQ(universe.size(), 9u);  // 3^2
}

TEST(EnumeratePossibleDatasetsTest, BudgetEnforced) {
  auto dom = MakeLine(10);
  Policy p = Policy::FullDomain(dom).value();
  EXPECT_FALSE(EnumeratePossibleDatasets(p, 5, 1000).ok());  // 10^5 > 1000
}

TEST(EnumeratePossibleDatasetsTest, ConstraintsFilter) {
  auto dom = MakeLine(4);
  ConstraintSet q;
  q.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(4),
                            std::move(q))
                 .value();
  auto universe = EnumeratePossibleDatasets(p, 2, 1000).value();
  // Datasets of 2 tuples with exactly one tuple in {0,1}: 2 * 2 * 2 = 8.
  EXPECT_EQ(universe.size(), 8u);
}

// Unconstrained full-domain policy: neighbours are exactly the pairs
// differing in one tuple (differential privacy's neighbours).
TEST(NeighborsTest, FullDomainUnconstrainedMatchesDifferentialPrivacy) {
  auto dom = MakeLine(3);
  Policy p = Policy::FullDomain(dom).value();
  NeighborhoodResult r = EnumerateNeighbors(p, 2, 1000).value();
  size_t expected = 0;
  for (size_t i = 0; i < r.universe.size(); ++i) {
    for (size_t j = i + 1; j < r.universe.size(); ++j) {
      size_t diff = 0;
      for (size_t id = 0; id < 2; ++id) {
        if (r.universe[i].tuple(id) != r.universe[j].tuple(id)) ++diff;
      }
      if (diff == 1) ++expected;
    }
  }
  EXPECT_EQ(r.neighbor_pairs.size(), expected);
  EXPECT_GT(expected, 0u);
}

// Line-graph policy: only single-tuple changes between *adjacent* values
// are neighbours.
TEST(NeighborsTest, LineGraphRestrictsNeighbors) {
  auto dom = MakeLine(4);
  Policy p = Policy::Line(dom).value();
  NeighborhoodResult r = EnumerateNeighbors(p, 1, 1000).value();
  // Universe = 4 singleton datasets; neighbours = line edges = 3.
  EXPECT_EQ(r.universe.size(), 4u);
  EXPECT_EQ(r.neighbor_pairs.size(), 3u);
  for (const auto& [i, j] : r.neighbor_pairs) {
    ValueIndex x = r.universe[i].tuple(0);
    ValueIndex y = r.universe[j].tuple(0);
    EXPECT_EQ((x > y ? x - y : y - x), 1u);
  }
}

TEST(DiscriminativeSetTest, OnlyEdgesCount) {
  auto dom = MakeLine(4);
  Policy p = Policy::Line(dom).value();
  Dataset d1 = Dataset::Create(dom, {0, 3}).value();
  Dataset d2 = Dataset::Create(dom, {1, 0}).value();  // id0: edge, id1: not
  auto t = DiscriminativeSet(p, d1, d2);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(std::get<0>(t[0]), 0u);
  EXPECT_EQ(std::get<1>(t[0]), 0u);
  EXPECT_EQ(std::get<2>(t[0]), 1u);
}

// Under a partition constraint pinning cell counts, neighbours must move
// *two* tuples at once (swap across cells), never one.
TEST(NeighborsTest, CountConstraintForcesPairedChanges) {
  auto dom = MakeLine(4);
  ConstraintSet q;
  // Pin: exactly one tuple in {0,1} and one in {2,3}.
  q.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(4),
                            std::move(q))
                 .value();
  NeighborhoodResult r = EnumerateNeighbors(p, 2, 10000).value();
  ASSERT_FALSE(r.neighbor_pairs.empty());
  bool saw_single = false, saw_double = false;
  for (const auto& [i, j] : r.neighbor_pairs) {
    size_t diff = 0;
    for (size_t id = 0; id < 2; ++id) {
      if (r.universe[i].tuple(id) != r.universe[j].tuple(id)) ++diff;
    }
    if (diff == 1) saw_single = true;
    if (diff == 2) saw_double = true;
  }
  // Single changes within a side (e.g. 0 -> 1) preserve the count, so they
  // exist; the interesting Blowfish behaviour is that cross-side changes
  // appear only as paired swaps.
  EXPECT_TRUE(saw_single);
  EXPECT_TRUE(saw_double);
}

// Minimality (condition 3): with the constraint above, a dataset pair
// differing by a *swap plus an extra irrelevant change* must not be
// neighbours.
TEST(NeighborsTest, MinimalityPrunesNonMinimalPairs) {
  auto dom = MakeLine(4);
  ConstraintSet q;
  q.AddWithAnswer(CountQuery("low", [](ValueIndex x) { return x < 2; }), 1);
  Policy p = Policy::Create(dom, std::make_shared<FullGraph>(4),
                            std::move(q))
                 .value();
  auto universe = EnumeratePossibleDatasets(p, 3, 10000).value();
  // D1 = {0, 2, 2}; D2 = {2, 0, 3}: three tuples changed; T(D1,D2) has
  // size 3 but the sub-change {0->2, 2->0} already lands in I_Q, so D2 is
  // not minimally different from D1.
  Dataset d1 = Dataset::Create(dom, {0, 2, 2}).value();
  Dataset d2 = Dataset::Create(dom, {2, 0, 3}).value();
  ASSERT_TRUE(p.constraints().SatisfiedBy(d1));
  ASSERT_TRUE(p.constraints().SatisfiedBy(d2));
  EXPECT_FALSE(AreNeighbors(p, d1, d2, universe));
}

TEST(BruteForceSensitivityTest, HistogramFullDomain) {
  auto dom = MakeLine(3);
  Policy p = Policy::FullDomain(dom).value();
  auto hist = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    return h;
  };
  // One tuple moves -> one bucket -1, another +1: S(h) = 2.
  EXPECT_DOUBLE_EQ(BruteForceSensitivity(p, 2, 1000, hist).value(), 2.0);
}

TEST(BruteForceSensitivityTest, CumulativeLineVsFull) {
  auto dom = MakeLine(4);
  auto cumulative = [](const Dataset& d) {
    std::vector<double> h(d.domain().size(), 0.0);
    for (ValueIndex t : d.tuples()) h[t] += 1.0;
    for (size_t i = 1; i < h.size(); ++i) h[i] += h[i - 1];
    return h;
  };
  Policy line = Policy::Line(dom).value();
  Policy full = Policy::FullDomain(dom).value();
  // Line graph: S(S_T) = 1 (Sec 7.1); full graph: |T| - 1 = 3.
  EXPECT_DOUBLE_EQ(BruteForceSensitivity(line, 2, 1000, cumulative).value(),
                   1.0);
  EXPECT_DOUBLE_EQ(BruteForceSensitivity(full, 2, 1000, cumulative).value(),
                   3.0);
}

}  // namespace
}  // namespace blowfish
