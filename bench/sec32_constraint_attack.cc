// Section 3.2: the constraint averaging attack. A table of k counts is
// released DP-style with Lap(2/eps) noise per count; an adversary who
// knows the k-1 pairwise sums c_i + c_{i+1} builds k independent
// estimators of every count and averages them, reducing the variance from
// 2(2/eps)^2 to 2(2/eps)^2/k — near-exact reconstruction for large k.
//
// Columns: k, eps, raw MAE (noisy counts), attack MAE, fraction of counts
// reconstructed exactly, empirical vs predicted estimator variance.

#include <cstdio>

#include "core/attack.h"
#include "data/experiment.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(31415);
  const size_t reps = BenchReps(100);
  std::printf(
      "figure,k,eps,raw_mae,attack_mae,frac_exact,empirical_var,"
      "predicted_var\n");
  for (size_t k : {16, 64, 256, 1024}) {
    std::vector<double> counts(k);
    for (size_t i = 0; i < k; ++i) counts[i] = 50.0 + (i * 7) % 23;
    for (double eps : {0.5, 1.0}) {
      auto res = RunAveragingAttack(counts, 2.0 / eps, reps, rng).value();
      std::printf("sec32,%zu,%.2f,%.4f,%.4f,%.4f,%.5f,%.5f\n", k, eps,
                  res.raw_mean_abs_error, res.mean_abs_error,
                  res.fraction_exact, res.empirical_variance,
                  res.predicted_variance);
    }
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
