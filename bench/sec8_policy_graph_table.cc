// Section 8: policy-graph sensitivities under sparse count constraints.
//   * Example 8.1-8.3: the 2x2x3 domain with the [A1,A2] marginal —
//     alpha = 4, xi = 1, S(h,P) = 8.
//   * Thm 8.4 sweep: S(h,P) = 2 size(C) for single known marginals.
//   * Thm 8.5 sweep: S(h,P) = 2 max size(Ci) for disjoint marginals under
//     attribute secrets.
// Where the domain is small, the exact DFS bound is printed next to the
// closed form.

#include <cstdio>

#include "core/policy_graph.h"
#include "core/secret_graph.h"

namespace blowfish {
namespace {

int Run() {
  constexpr uint64_t kMaxEdges = uint64_t{1} << 24;
  std::printf("figure,case,alpha,xi,exact_bound,closed_form\n");

  // --- Example 8.1-8.3 ---
  {
    auto dom = std::make_shared<const Domain>(
        Domain::Create({Attribute{"A1", 2, 1.0}, Attribute{"A2", 2, 1.0},
                        Attribute{"A3", 3, 1.0}})
            .value());
    ConstraintSet q;
    (void)q.AddMarginal(dom, Marginal{{0, 1}});
    FullGraph g(dom->size());
    PolicyGraph pg = PolicyGraph::Build(q, g, kMaxEdges).value();
    std::printf("sec8,example8.3:[A1A2]marginal+Gfull,%llu,%llu,%.0f,%.0f\n",
                static_cast<unsigned long long>(
                    pg.LongestSimpleCycle().value()),
                static_cast<unsigned long long>(
                    pg.LongestSourceSinkPath().value()),
                pg.HistogramSensitivityBound().value(),
                MarginalFullDomainSensitivity(*dom, Marginal{{0, 1}})
                    .value());
  }

  // --- Thm 8.4: single marginals on a 4x4x4 domain ---
  {
    auto dom =
        std::make_shared<const Domain>(Domain::Grid(4, 3).value());
    for (const Marginal& c :
         {Marginal{{0}}, Marginal{{1}}, Marginal{{0, 1}},
          Marginal{{0, 2}}}) {
      std::string label = "thm8.4:[";
      for (size_t a : c.attribute_indices) label += std::to_string(a);
      label += "]";
      double closed = MarginalFullDomainSensitivity(*dom, c).value();
      ConstraintSet q;
      (void)q.AddMarginal(dom, c);
      FullGraph g(dom->size());
      PolicyGraph pg = PolicyGraph::Build(q, g, kMaxEdges).value();
      // The exact DFS is exponential in |Q|; only run it for small cells.
      std::string exact = "-";
      if (c.Size(*dom) <= 4) {
        exact =
            std::to_string(pg.HistogramSensitivityBound().value());
      }
      std::printf("sec8,%s,-,-,%s,%.0f\n", label.c_str(), exact.c_str(),
                  closed);
    }
  }

  // --- Thm 8.5: disjoint marginals, attribute secrets ---
  {
    auto dom = std::make_shared<const Domain>(
        Domain::Create({Attribute{"A1", 3, 1.0}, Attribute{"A2", 4, 1.0},
                        Attribute{"A3", 5, 1.0}})
            .value());
    struct Case {
      const char* label;
      std::vector<Marginal> marginals;
    };
    for (const Case& c :
         {Case{"thm8.5:[A1]+[A2]", {Marginal{{0}}, Marginal{{1}}}},
          Case{"thm8.5:[A1]+[A3]", {Marginal{{0}}, Marginal{{2}}}},
          Case{"thm8.5:[A2]+[A3]", {Marginal{{1}}, Marginal{{2}}}}}) {
      double closed =
          DisjointMarginalsAttributeSensitivity(*dom, c.marginals).value();
      std::printf("sec8,%s,-,-,-,%.0f\n", c.label, closed);
    }
  }

  // --- Corollary 8.3 for context ---
  for (size_t p : {1, 4, 12}) {
    std::printf("sec8,corollary8.3:|Q|=%zu,-,-,-,%.0f\n", p,
                HistogramSensitivityCorollaryBound(p));
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
