// Figure 2(b): mean squared error of random range queries vs epsilon on
// the adult capital-loss attribute (|T| = 4357) under the Ordered
// Hierarchical mechanism with G^{d,theta},
// theta in {full domain, 1000, 500, 100, 50, 10, 1}. Fan-out f = 16.
// theta = full reproduces the classical DP hierarchical mechanism;
// theta = 1 is the pure Ordered Mechanism.

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140618);
  Dataset data = GenerateAdultCapitalLossLike(48842, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  auto dom = data.domain_ptr();
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;
  const size_t reps = BenchReps(10);      // paper: 50
  const size_t num_queries = 2000;        // paper: 10000
  auto queries = bench::RandomRanges(dom->size(), num_queries, 99);

  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::RangeQueryErrorSeries(label, hist, policy, queries,
                                               opts, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("theta=full domain", Policy::FullDomain(dom).value());
  for (double theta : {1000.0, 500.0, 100.0, 50.0, 10.0}) {
    add("theta=" + std::to_string(static_cast<int>(theta)),
        Policy::DistanceThreshold(dom, theta).value());
  }
  add("theta=1", Policy::Line(dom).value());
  PrintSeries("fig2b", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
