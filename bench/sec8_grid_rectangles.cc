// Section 8.2.3 / Thm 8.6: histogram sensitivity under disjoint rectangle
// range-count constraints with distance-threshold secrets on a grid
// domain: S(h, P) = 2 (maxcomp(Q) + 1), where maxcomp is the largest
// connected component of the rectangle graph (edge iff min L1 distance
// <= theta). Sweeps theta for random disjoint rectangle sets on [64]^2.

#include <cstdio>

#include "core/policy_graph.h"
#include "util/random.h"

namespace blowfish {
namespace {

std::vector<Rectangle> RandomDisjointRectangles(const Domain& dom,
                                                size_t target, Random& rng) {
  std::vector<Rectangle> rects;
  size_t attempts = 0;
  while (rects.size() < target && attempts < 2000) {
    ++attempts;
    uint64_t m0 = dom.attribute(0).cardinality;
    uint64_t m1 = dom.attribute(1).cardinality;
    uint64_t w = static_cast<uint64_t>(rng.UniformInt(1, 6));
    uint64_t h = static_cast<uint64_t>(rng.UniformInt(1, 6));
    uint64_t x = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(m0 - w)));
    uint64_t y = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(m1 - h)));
    Rectangle cand{{x, y}, {x + w - 1, y + h - 1}};
    bool ok = true;
    for (const Rectangle& r : rects) {
      if (r.Intersects(cand)) {
        ok = false;
        break;
      }
    }
    if (ok) rects.push_back(cand);
  }
  return rects;
}

int Run() {
  Random rng(1618);
  auto dom = std::make_shared<const Domain>(Domain::Grid(64, 2).value());
  std::printf("figure,num_rects,theta,maxcomp,sensitivity_bound\n");
  for (size_t target : {5, 15, 30}) {
    std::vector<Rectangle> rects =
        RandomDisjointRectangles(*dom, target, rng);
    for (double theta : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      uint64_t maxcomp =
          MaxRectangleComponent(*dom, rects, theta).value();
      double bound =
          RectangleDistanceSensitivity(*dom, rects, theta).value();
      std::printf("sec8rect,%zu,%.0f,%llu,%.0f\n", rects.size(), theta,
                  static_cast<unsigned long long>(maxcomp), bound);
    }
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
