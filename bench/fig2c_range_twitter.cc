// Figure 2(c): range-query MSE vs epsilon on the twitter latitude
// projection (|T| = 400, ~2222 km extent) under G^{d,theta} with
// theta in {full, 500km, 50km, 5km}. At ~5.55 km per cell, theta = 5km is
// the line graph (pure Ordered Mechanism).

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140619);
  Dataset data = GenerateTwitterLatitudeLike(193563, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  auto dom = data.domain_ptr();
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;
  const size_t reps = BenchReps(10);  // paper: 50
  auto queries = bench::RandomRanges(dom->size(), 2000, 101);

  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::RangeQueryErrorSeries(label, hist, policy, queries,
                                               opts, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("theta=full domain", Policy::FullDomain(dom).value());
  add("theta=500km", Policy::DistanceThreshold(dom, 500.0).value());
  add("theta=50km", Policy::DistanceThreshold(dom, 50.0).value());
  add("theta=5km", Policy::Line(dom).value());
  PrintSeries("fig2c", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
