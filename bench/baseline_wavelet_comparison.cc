// Extended baseline comparison for the Sec 7 workloads: Ordered Mechanism
// (line-graph Blowfish), Ordered-Hierarchical (theta = 50), hierarchical
// (uniform and geometric budgets), and the Privelet-style Haar wavelet
// mechanism, all answering the same random range queries on the
// adult-like capital-loss data.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"
#include "mech/hierarchical.h"
#include "mech/ordered.h"
#include "mech/wavelet.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(60221023);
  Dataset data = GenerateAdultCapitalLossLike(48842, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  auto dom = data.domain_ptr();
  const size_t reps = BenchReps(10);
  auto queries = bench::RandomRanges(dom->size(), 1000, 55);
  std::vector<double> truth;
  for (auto [lo, hi] : queries) truth.push_back(hist.RangeSum(lo, hi).value());

  auto report = [&](const char* label, auto release_and_query) {
    for (double eps : {0.1, 0.5, 1.0}) {
      double mse = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        Random fork = rng.Fork();
        mse += release_and_query(eps, fork);
      }
      std::printf("wavelet_cmp,%s,%.1f,%.3f\n", label, eps,
                  mse / static_cast<double>(reps));
    }
  };

  std::printf("figure,mechanism,eps,range_mse\n");
  Policy line = Policy::Line(dom).value();
  report("ordered(theta=1)", [&](double eps, Random& r) {
    auto m = OrderedMechanism(hist, line, eps, r, false).value();
    double mse = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      double e = m.RangeQuery(queries[q].first, queries[q].second).value() -
                 truth[q];
      mse += e * e;
    }
    return mse / static_cast<double>(queries.size());
  });

  Policy theta50 = Policy::DistanceThreshold(dom, 50.0).value();
  report("OH(theta=50)", [&](double eps, Random& r) {
    OrderedHierarchicalOptions opts;
    opts.fanout = 16;
    auto m =
        OrderedHierarchicalMechanism::Release(hist, theta50, eps, opts, r)
            .value();
    double mse = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      double e = m.RangeQuery(queries[q].first, queries[q].second).value() -
                 truth[q];
      mse += e * e;
    }
    return mse / static_cast<double>(queries.size());
  });

  for (auto [label, budget] :
       std::initializer_list<std::pair<const char*, BudgetSplit>>{
           {"hierarchical(uniform)", BudgetSplit::kUniform},
           {"hierarchical(geometric)", BudgetSplit::kGeometric}}) {
    report(label, [&, budget = budget](double eps, Random& r) {
      HierarchicalOptions opts;
      opts.fanout = 16;
      opts.budget = budget;
      auto m = HierarchicalMechanism::Release(hist, eps, opts, r).value();
      double mse = 0.0;
      for (size_t q = 0; q < queries.size(); ++q) {
        double e =
            m.RangeQuery(queries[q].first, queries[q].second).value() -
            truth[q];
        mse += e * e;
      }
      return mse / static_cast<double>(queries.size());
    });
  }

  report("wavelet(haar)", [&](double eps, Random& r) {
    auto m = WaveletMechanism::Release(hist, eps, r).value();
    double mse = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      double e = m.RangeQuery(queries[q].first, queries[q].second).value() -
                 truth[q];
      mse += e * e;
    }
    return mse / static_cast<double>(queries.size());
  });
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
