// google-benchmark micro-benchmarks: throughput of the core mechanisms and
// their substrates at realistic domain sizes.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/policy.h"
#include "core/sensitivity.h"
#include "mech/constrained_inference.h"
#include "mech/hierarchical.h"
#include "mech/kmeans.h"
#include "mech/laplace.h"
#include "mech/ordered.h"
#include "mech/ordered_hierarchical.h"
#include "util/random.h"

namespace blowfish {
namespace {

Histogram MakeData(size_t domain, size_t n) {
  Random rng(1);
  Histogram h(domain);
  for (size_t i = 0; i < n; ++i) {
    h.Add(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1)));
  }
  return h;
}

void BM_LaplaceRelease(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  std::vector<double> truth(dim, 10.0);
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LaplaceRelease(truth, 2.0, 0.5, rng).value());
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_LaplaceRelease)->Arg(1024)->Arg(16384);

void BM_IsotonicRegression(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(3);
  std::vector<double> ys(n);
  double run = 0.0;
  for (double& y : ys) {
    run += rng.Uniform(0, 2);
    y = run + rng.Laplace(5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsotonicRegression(ys).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IsotonicRegression)->Arg(4096)->Arg(65536);

void BM_OrderedMechanism(benchmark::State& state) {
  const size_t domain = static_cast<size_t>(state.range(0));
  Histogram data = MakeData(domain, 50000);
  auto dom = std::make_shared<const Domain>(Domain::Line(domain).value());
  Policy p = Policy::Line(dom).value();
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrderedMechanism(data, p, 0.5, rng).value());
  }
}
BENCHMARK(BM_OrderedMechanism)->Arg(4357)->Arg(65536);

void BM_HierarchicalRelease(benchmark::State& state) {
  const size_t domain = static_cast<size_t>(state.range(0));
  Histogram data = MakeData(domain, 50000);
  HierarchicalOptions opts;
  opts.fanout = 16;
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HierarchicalMechanism::Release(data, 0.5, opts, rng).value());
  }
}
BENCHMARK(BM_HierarchicalRelease)->Arg(4357)->Arg(65536);

void BM_OrderedHierarchicalRelease(benchmark::State& state) {
  const size_t domain = static_cast<size_t>(state.range(0));
  Histogram data = MakeData(domain, 50000);
  auto dom = std::make_shared<const Domain>(Domain::Line(domain).value());
  Policy p = Policy::DistanceThreshold(dom, 100.0).value();
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;
  Random rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OrderedHierarchicalMechanism::Release(data, p, 0.5, opts, rng)
            .value());
  }
}
BENCHMARK(BM_OrderedHierarchicalRelease)->Arg(4357)->Arg(65536);

void BM_OHRangeQuery(benchmark::State& state) {
  const size_t domain = 65536;
  Histogram data = MakeData(domain, 50000);
  auto dom = std::make_shared<const Domain>(Domain::Line(domain).value());
  Policy p = Policy::DistanceThreshold(dom, 256.0).value();
  OrderedHierarchicalOptions opts;
  opts.fanout = 16;
  Random rng(7);
  auto m =
      OrderedHierarchicalMechanism::Release(data, p, 0.5, opts, rng).value();
  size_t lo = 123, hi = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.RangeQuery(lo, hi).value());
  }
}
BENCHMARK(BM_OHRangeQuery);

void BM_KMeansIterationPrivate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Random rng(8);
  std::vector<std::vector<double>> points(n, std::vector<double>(2));
  for (auto& pt : points) {
    pt[0] = rng.Uniform(0, 100);
    pt[1] = rng.Uniform(0, 100);
  }
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SuLQKMeans(points, {0, 0}, {100, 100}, 20.0, 2.0, 0.5, opts, rng)
            .value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeansIterationPrivate)->Arg(10000)->Arg(100000);

void BM_SensitivityEngineThetaGraph(benchmark::State& state) {
  auto dom =
      std::make_shared<const Domain>(Domain::Line(4357).value());
  auto g = DistanceThresholdGraph::Create(dom, 50.0).value();
  CumulativeHistogramQuery q(dom->size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UnconstrainedSensitivity(q, *g, uint64_t{1} << 26).value());
  }
}
BENCHMARK(BM_SensitivityEngineThetaGraph);

}  // namespace
}  // namespace blowfish

BENCHMARK_MAIN();
