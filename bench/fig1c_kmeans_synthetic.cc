// Figure 1(c): k-means error vs epsilon on the paper's synthetic dataset
// (n = 1000 points in (0,1)^4, k = 4 Gaussian clusters, sigma = 0.2),
// Laplace vs G^{L1,theta} with theta in {1.0, 0.5, 0.25, 0.1}.

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140614);
  Dataset data = GenerateGaussianClusters(1000, 4, 64, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(20);  // paper: 50

  double nonprivate =
      bench::NonPrivateObjective(data.Points(), opts, rng);
  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::KMeansErrorSeries(label, data, policy, opts,
                                           nonprivate, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("laplace", Policy::FullDomain(data.domain_ptr()).value());
  for (double theta : {1.0, 0.5, 0.25, 0.1}) {
    add("blowfish|" + std::to_string(theta).substr(0, 4),
        Policy::DistanceThreshold(data.domain_ptr(), theta).value());
  }
  PrintSeries("fig1c", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
