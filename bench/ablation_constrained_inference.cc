// Ablation: constrained inference (Hay et al. post-processing).
//   * Ordered Mechanism: isotonic regression on sparse vs dense data —
//     the O(p log^3|T|/eps^2) claim of Sec 7.1 predicts big wins when the
//     number of distinct cumulative counts p is small.
//   * Hierarchical mechanism: tree consistency on/off.

#include <cstdio>

#include "core/policy.h"
#include "data/experiment.h"
#include "mech/hierarchical.h"
#include "mech/ordered.h"
#include "util/stats.h"

namespace blowfish {
namespace {

Histogram SparseData(size_t domain, size_t n, size_t spikes, Random& rng) {
  Histogram h(domain);
  for (size_t i = 0; i < n; ++i) {
    size_t s = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(spikes) - 1));
    h.Add((s * domain) / spikes);
  }
  return h;
}

Histogram DenseData(size_t domain, size_t n, Random& rng) {
  Histogram h(domain);
  for (size_t i = 0; i < n; ++i) {
    h.Add(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1)));
  }
  return h;
}

int Run() {
  Random rng(104729);
  const size_t domain = 2048;
  const double eps = 0.3;
  const size_t reps = BenchReps(25);
  auto dom =
      std::make_shared<const Domain>(Domain::Line(domain).value());
  Policy line = Policy::Line(dom).value();

  std::printf("figure,data,mechanism,inference,cumulative_mse\n");
  struct Case {
    const char* name;
    Histogram data;
  };
  Case cases[] = {{"sparse(p~8)", SparseData(domain, 30000, 8, rng)},
                  {"dense", DenseData(domain, 30000, rng)}};
  for (auto& c : cases) {
    std::vector<double> truth = c.data.CumulativeSums();
    for (bool inference : {false, true}) {
      double mse = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        auto om = OrderedMechanism(c.data, line, eps, rng, inference)
                      .value();
        mse += MeanSquaredError(truth, om.inferred_cumulative);
      }
      std::printf("ablation_ci,%s,ordered,%s,%.3f\n", c.name,
                  inference ? "on" : "off",
                  mse / static_cast<double>(reps));
    }
    for (bool consistency : {false, true}) {
      double mse = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        HierarchicalOptions opts;
        opts.fanout = 16;
        opts.consistency = consistency;
        auto hm =
            HierarchicalMechanism::Release(c.data, eps, opts, rng).value();
        std::vector<double> cum(domain);
        for (size_t j = 0; j < domain; ++j) {
          cum[j] = hm.CumulativeCount(j).value();
        }
        mse += MeanSquaredError(truth, cum);
      }
      std::printf("ablation_ci,%s,hierarchical,%s,%.3f\n", c.name,
                  consistency ? "on" : "off",
                  mse / static_cast<double>(reps));
    }
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
