// Ablation: the Ordered Hierarchical mechanism's budget split
// eps_S : eps_H. Sweeps the S-fraction and compares measured range-query
// MSE against the Eqn 14 analytic model and its Eqn 15 optimum, on the
// adult-like capital-loss data at theta = 100.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(7919);
  Dataset data = GenerateAdultCapitalLossLike(48842, rng).value();
  Histogram hist = data.CompleteHistogram().value();
  auto dom = data.domain_ptr();
  const double theta = 100.0;
  const double eps = 0.5;
  Policy p = Policy::DistanceThreshold(dom, theta).value();
  auto queries = bench::RandomRanges(dom->size(), 1000, 7);
  const size_t reps = BenchReps(15);

  OHErrorModel model = OHErrorModel::Compute(dom->size(), 100, 16);
  std::printf("figure,eps_s_fraction,measured_mse,model_mse\n");
  for (double frac : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95,
                      model.OptimalSFraction()}) {
    OrderedHierarchicalOptions opts;
    opts.fanout = 16;
    opts.eps_s_fraction = frac;
    double mse = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Random fork = rng.Fork();
      auto m = OrderedHierarchicalMechanism::Release(hist, p, eps, opts,
                                                     fork)
                   .value();
      for (auto [lo, hi] : queries) {
        double e =
            m.RangeQuery(lo, hi).value() - hist.RangeSum(lo, hi).value();
        mse += e * e;
      }
    }
    mse /= static_cast<double>(reps * queries.size());
    std::printf("ablation_oh,%.3f,%.3f,%.3f\n", frac, mse,
                model.RangeError(frac * eps, (1.0 - frac) * eps));
  }
  std::printf("# Eqn 15 optimum: eps_S*/eps = %.3f, model MSE %.3f\n",
              model.OptimalSFraction(), model.OptimalRangeError(eps));
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
