// Figure 1(d): the interplay of dataset size and Blowfish —
// Objective(Laplace) / Objective(Blowfish|theta=128) on the skin data at
// 1%, 10%, and full size, for eps in {0.1, 0.5, 1.0}.

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

double MeanPrivateObjective(const Dataset& data, const Policy& policy,
                            const KMeansOptions& opts, double eps,
                            size_t reps, Random& rng) {
  double total = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    Random fork = rng.Fork();
    total += BlowfishKMeans(data, policy, eps, opts, fork).value().objective;
  }
  return total / static_cast<double>(reps);
}

int Run() {
  Random rng(20140615);
  Dataset full = GenerateSkinLike(245057, rng).value();
  Dataset skin10 = Subsample(full, 0.10, rng).value();
  Dataset skin01 = Subsample(full, 0.01, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(5);  // paper: 50

  std::vector<SeriesPoint> all;
  struct Entry {
    const char* label;
    const Dataset* data;
  };
  for (const Entry& e : {Entry{"1%sample", &skin01},
                         Entry{"10%sample", &skin10},
                         Entry{"full", &full}}) {
    Policy laplace = Policy::FullDomain(e.data->domain_ptr()).value();
    Policy blowfish128 =
        Policy::DistanceThreshold(e.data->domain_ptr(), 128.0).value();
    for (double eps : {0.1, 0.5, 1.0}) {
      double obj_lap =
          MeanPrivateObjective(*e.data, laplace, opts, eps, reps, rng);
      double obj_bf =
          MeanPrivateObjective(*e.data, blowfish128, opts, eps, reps, rng);
      Summary s;
      s.mean = obj_lap / obj_bf;
      s.lower_quartile = s.mean;
      s.upper_quartile = s.mean;
      all.push_back(SeriesPoint{e.label, eps, s});
    }
  }
  PrintSeries("fig1d", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
