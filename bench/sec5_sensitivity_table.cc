// Section 5: policy-specific global sensitivities (Def 5.1) for the
// queries and policies discussed analytically in the paper, computed both
// by closed form and by the generic max-over-edges engine where feasible.
//
// Rows: query, policy, closed-form S(f,P), generic-engine S(f,P).

#include <cstdio>

#include "core/policy.h"
#include "core/sensitivity.h"

namespace blowfish {
namespace {

int Run() {
  auto line =
      std::make_shared<const Domain>(Domain::Line(1024, 1.0).value());
  auto grid = std::make_shared<const Domain>(Domain::Grid(64, 2).value());
  constexpr uint64_t kMaxEdges = uint64_t{1} << 26;

  std::printf("figure,query,policy,closed_form,generic_engine\n");

  // Complete histogram h: S = 2 for every policy with an edge.
  {
    CompleteHistogramQuery q(line->size());
    for (auto [name, policy] :
         std::initializer_list<std::pair<const char*, Policy>>{
             {"full", Policy::FullDomain(line).value()},
             {"line", Policy::Line(line).value()},
             {"theta=32", Policy::DistanceThreshold(line, 32).value()}}) {
      double closed = HistogramSensitivity(policy.graph());
      double generic =
          UnconstrainedSensitivity(q, policy.graph(), kMaxEdges).value();
      std::printf("sec5,h,%s,%.1f,%.1f\n", name, closed, generic);
    }
  }

  // Cumulative histogram S_T over |T| = 1024.
  for (auto [name, policy] :
       std::initializer_list<std::pair<const char*, Policy>>{
           {"full", Policy::FullDomain(line).value()},
           {"line", Policy::Line(line).value()},
           {"theta=32", Policy::DistanceThreshold(line, 32).value()},
           {"theta=512", Policy::DistanceThreshold(line, 512).value()}}) {
    double closed = CumulativeHistogramSensitivity(policy).value();
    CumulativeHistogramQuery q(line->size());
    double generic =
        UnconstrainedSensitivity(q, policy.graph(), kMaxEdges).value();
    std::printf("sec5,S_T,%s,%.1f,%.1f\n", name, closed, generic);
  }

  // q_sum on the 64x64 grid (Lemma 6.1). The generic engine enumerates
  // max edge L1 distance; closed forms from the lemma.
  for (auto [name, policy] :
       std::initializer_list<std::pair<const char*, Policy>>{
           {"full", Policy::FullDomain(grid).value()},
           {"attr", Policy::Attribute(grid).value()},
           {"theta=8", Policy::DistanceThreshold(grid, 8).value()},
           {"partition|16", Policy::GridPartition(grid, {4, 4}).value()}}) {
    double closed = QSumSensitivity(policy).value();
    std::printf("sec5,q_sum,%s,%.1f,-\n", name, closed);
  }

  // Linear sum f_w with values = index, theta policy: S = theta (Sec 5).
  {
    ValueWeightedSumQuery q(
        [](ValueIndex x) { return static_cast<double>(x); });
    for (double theta : {8.0, 64.0}) {
      Policy p = Policy::DistanceThreshold(line, theta).value();
      double generic =
          UnconstrainedSensitivity(q, p.graph(), kMaxEdges).value();
      std::printf("sec5,f_w,theta=%d,%.1f,%.1f\n",
                  static_cast<int>(theta), theta, generic);
    }
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
