// Figure 1(b): k-means error vs epsilon on the 1% skin-segmentation
// subsample (B/G/R in [0,255]^3), Laplace vs G^{L1,theta} with
// theta in {256, 128, 64, 32}.

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140613);
  Dataset full = GenerateSkinLike(245057, rng).value();
  Dataset skin01 = Subsample(full, 0.01, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(15);  // paper: 50

  double nonprivate =
      bench::NonPrivateObjective(skin01.Points(), opts, rng);
  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::KMeansErrorSeries(label, skin01, policy, opts,
                                           nonprivate, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("laplace", Policy::FullDomain(skin01.domain_ptr()).value());
  for (double theta : {256.0, 128.0, 64.0, 32.0}) {
    add("blowfish|" + std::to_string(static_cast<int>(theta)),
        Policy::DistanceThreshold(skin01.domain_ptr(), theta).value());
  }
  PrintSeries("fig1b", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
