// ReleaseEngine throughput: cold per-query sensitivity recomputation vs
// warm-cache batched serving, plus the thread-count determinism check.
//
// The workload is the expensive case the cache exists for: a constrained
// policy (one known marginal under full-domain secrets), where every
// histogram release needs the Thm 8.2 policy-graph bound — building G_P
// enumerates all |T|^2/2 secret-graph edges before the alpha/xi DFS. The
// cold baseline recomputes that per query, as the one-shot library calls
// do; the engine computes it once and serves the rest from the LRU cache.
//
// Output: queries/sec cold vs warm, the speedup (acceptance: >= 5x),
// whether a repeated batch with the same root seed is bit-identical
// across --threads 1 and --threads 4, a persistent-pool vs
// per-batch-thread-spawn executor comparison (the reason
// util/thread_pool.h exists), and whether an EngineHost batch is
// bit-identical for any pool size (acceptance: it is).
//
// A second section measures the columnar dataset engine: on a 512k-row
// dataset it serves one 64-query histogram batch per ScanMode — row
// (every query walks all rows), columnar (every query runs the
// dictionary-encoded kernel), shared (the batch runs the kernel once) —
// checks the three transcripts are bit-identical, and gates the shared
// scan at >= 3x the row-major execute-phase throughput.
//
// A third section times the PR-9 op kinds — quadtree on the 2-attribute
// scan workload and hier_range on a Line(2048) ordered tenant — and
// checks each transcript is bit-identical across two fresh engines with
// the same root seed.
//
// Alongside the CSV on stdout, the run is written as
// BENCH_engine_throughput.json (override with --json <path>): cold and
// warm throughput, a warm-cache sweep over pool sizes {0, 1, 8}, the
// columnar scan-mode comparison, the quadtree/hier_range section, and
// the pass/fail checks.
// bench/baselines/ holds a tracked baseline so a perf regression shows
// up as a diff, not a memory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "core/policy_graph.h"
#include "core/secret_graph.h"
#include "data/synthetic.h"
#include "engine/batch_request.h"
#include "engine/release_engine.h"
#include "engine/sensitivity_cache.h"
#include "mech/laplace.h"
#include "server/engine_host.h"
#include "util/thread_pool.h"
#include "util/random.h"

namespace blowfish {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

StatusOr<Policy> MakeConstrainedPolicy() {
  // 4 x 512 domain (|T| = 2048): big enough that enumerating the full
  // graph's ~2M edges per sensitivity computation dominates, small enough
  // to bench quickly. The known [A1] marginal has 4 cells, so the exact
  // alpha/xi DFS stays tractable (6 policy-graph vertices).
  BLOWFISH_ASSIGN_OR_RETURN(
      Domain dom, Domain::Create({Attribute{"A1", 4, 1.0},
                                  Attribute{"A2", 512, 1.0}}));
  auto domain = std::make_shared<const Domain>(std::move(dom));
  ConstraintSet constraints;
  BLOWFISH_RETURN_IF_ERROR(constraints.AddMarginal(domain, Marginal{{0}}));
  auto graph = std::make_shared<const FullGraph>(domain->size());
  return Policy::Create(domain, graph, std::move(constraints));
}

StatusOr<Dataset> MakeData(const Policy& policy, size_t n, Random& rng) {
  std::vector<ValueIndex> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(static_cast<ValueIndex>(rng.UniformInt(
        0, static_cast<int64_t>(policy.domain().size()) - 1)));
  }
  return Dataset::Create(policy.domain_ptr(), std::move(tuples));
}

std::vector<QueryRequest> HistogramBatch(size_t count, double eps) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request = MakeQueryRequest("histogram", eps).value();
    request.label = "q" + std::to_string(i);
    batch.push_back(std::move(request));
  }
  return batch;
}

std::vector<QueryRequest> OpBatch(
    const std::string& kind, size_t count, double eps,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  std::vector<QueryRequest> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request = MakeQueryRequest(kind, eps, kv).value();
    request.label = kind + std::to_string(i);
    batch.push_back(std::move(request));
  }
  return batch;
}

bool Identical(const std::vector<QueryResponse>& a,
               const std::vector<QueryResponse>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].status.ok() != b[i].status.ok()) return false;
    if (a[i].values != b[i].values) return false;  // bit-exact doubles
    if (a[i].sensitivity != b[i].sensitivity) return false;
  }
  return true;
}

/// One warm-cache sweep point: queries/sec at a given pool size.
struct PoolPoint {
  size_t pool_size = 0;
  double warm_qps = 0.0;
};

int Run(const std::string& json_path) {
  constexpr uint64_t kMaxEdges = uint64_t{1} << 24;
  constexpr size_t kColdQueries = 3;
  constexpr size_t kWarmQueries = 64;
  constexpr double kEps = 0.1;
  constexpr uint64_t kSeed = 20140612;

  auto policy = MakeConstrainedPolicy();
  if (!policy.ok()) {
    std::fprintf(stderr, "policy: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  Random data_rng(kSeed);
  auto data = MakeData(*policy, 100000, data_rng);
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto hist = data->CompleteHistogram();
  if (!hist.ok()) {
    std::fprintf(stderr, "hist: %s\n", hist.status().ToString().c_str());
    return 1;
  }

  std::printf("# engine_throughput: |T|=%llu, constraints=%zu, n=%zu\n",
              static_cast<unsigned long long>(policy->domain().size()),
              policy->constraints().size(), data->size());

  // --- Cold baseline: one-shot releases, sensitivity recomputed each
  // time (this is exactly what LaplaceHistogramWithConstraints does). ---
  Random cold_rng(kSeed);
  auto cold_start = Clock::now();
  for (size_t i = 0; i < kColdQueries; ++i) {
    auto released = LaplaceHistogramWithConstraints(*policy, *hist, kEps,
                                                    cold_rng, kMaxEdges);
    if (!released.ok()) {
      std::fprintf(stderr, "cold release: %s\n",
                   released.status().ToString().c_str());
      return 1;
    }
  }
  const double cold_seconds = SecondsSince(cold_start);
  const double cold_qps = kColdQueries / cold_seconds;

  // --- Warm engine: first batch pays one cache miss, the measured batch
  // is served entirely from the cache. ---
  ReleaseEngineOptions options;
  options.root_seed = kSeed;
  options.default_session_budget = 1e9;
  options.num_threads = 2;
  auto engine = ReleaseEngine::Create(*policy, *data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  (void)(*engine)->ServeBatch(HistogramBatch(1, kEps));  // pay the miss
  auto warm_start = Clock::now();
  auto warm = (*engine)->ServeBatch(HistogramBatch(kWarmQueries, kEps));
  const double warm_seconds = SecondsSince(warm_start);
  const double warm_qps = kWarmQueries / warm_seconds;
  for (const QueryResponse& r : warm) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "warm release: %s\n", r.status.ToString().c_str());
      return 1;
    }
  }
  const SensitivityCache::Stats stats = (*engine)->cache().stats();

  const double speedup = warm_qps / cold_qps;
  std::printf("metric,value\n");
  std::printf("cold_qps,%.3f\n", cold_qps);
  std::printf("warm_qps,%.3f\n", warm_qps);
  std::printf("speedup,%.1f\n", speedup);
  std::printf("cache_hits,%llu\n",
              static_cast<unsigned long long>(stats.hits));
  std::printf("cache_misses,%llu\n",
              static_cast<unsigned long long>(stats.misses));
  std::printf("speedup_check,%s\n", speedup >= 5.0 ? "PASS" : "FAIL");

  // --- Warm-cache throughput vs pool size. -------------------------------
  // Pool size 0 is the inline executor (the submitting thread drains the
  // whole batch); the sweep shows what worker fan-out buys once the
  // sensitivity is cached and the work per query is mechanism-only.
  std::vector<PoolPoint> pool_points;
  for (size_t pool_size : {size_t{0}, size_t{1}, size_t{8}}) {
    ReleaseEngineOptions opts;
    opts.root_seed = kSeed;
    opts.default_session_budget = 1e9;
    opts.pool = std::make_shared<ThreadPool>(pool_size);
    auto e = ReleaseEngine::Create(*policy, *data, opts);
    if (!e.ok()) {
      std::fprintf(stderr, "engine: %s\n", e.status().ToString().c_str());
      return 1;
    }
    (void)(*e)->ServeBatch(HistogramBatch(1, kEps));  // pay the miss
    const auto start = Clock::now();
    auto responses = (*e)->ServeBatch(HistogramBatch(kWarmQueries, kEps));
    const double seconds = SecondsSince(start);
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "pool sweep release: %s\n",
                     r.status.ToString().c_str());
        return 1;
      }
    }
    pool_points.push_back(PoolPoint{pool_size, kWarmQueries / seconds});
    std::printf("warm_qps_pool_%zu,%.3f\n", pool_size,
                pool_points.back().warm_qps);
  }

  // --- Determinism: same root seed, same request history, different
  // thread counts -> bit-identical output. ---
  bool deterministic = true;
  std::vector<std::vector<QueryResponse>> runs;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ReleaseEngineOptions opts;
    opts.root_seed = kSeed;
    opts.default_session_budget = 1e9;
    opts.num_threads = threads;
    auto e = ReleaseEngine::Create(*policy, *data, opts);
    if (!e.ok()) {
      std::fprintf(stderr, "engine: %s\n", e.status().ToString().c_str());
      return 1;
    }
    runs.push_back((*e)->ServeBatch(HistogramBatch(16, kEps)));
  }
  deterministic = Identical(runs[0], runs[1]);
  std::printf("determinism_threads_1_vs_4,%s\n",
              deterministic ? "PASS" : "FAIL");

  // --- Persistent pool vs per-batch thread spawn. ------------------------
  // PR 1 spawned a fresh worker set per batch; the server layer keeps one
  // pool alive. Same work, same fan-out width — the difference is pure
  // thread-lifecycle overhead per batch.
  constexpr size_t kExecBatches = 200;
  constexpr size_t kExecWidth = 8;
  auto busy_task = []() {
    // A few microseconds of arithmetic, stand-in for a cheap cached query.
    volatile uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 4000; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    }
  };
  double pool_seconds = 0.0;
  {
    ThreadPool pool(kExecWidth);
    const auto start = Clock::now();
    for (size_t b = 0; b < kExecBatches; ++b) {
      std::vector<std::future<void>> done;
      done.reserve(kExecWidth);
      for (size_t t = 0; t < kExecWidth; ++t) {
        done.push_back(pool.Submit(busy_task));
      }
      for (auto& f : done) f.get();
    }
    pool_seconds = SecondsSince(start);
  }
  double spawn_seconds = 0.0;
  {
    const auto start = Clock::now();
    for (size_t b = 0; b < kExecBatches; ++b) {
      std::vector<std::thread> threads;
      threads.reserve(kExecWidth);
      for (size_t t = 0; t < kExecWidth; ++t) {
        threads.emplace_back(busy_task);
      }
      for (auto& t : threads) t.join();
    }
    spawn_seconds = SecondsSince(start);
  }
  std::printf("pool_batches_per_sec,%.1f\n", kExecBatches / pool_seconds);
  std::printf("spawn_batches_per_sec,%.1f\n", kExecBatches / spawn_seconds);
  std::printf("executor_speedup,%.2f\n", spawn_seconds / pool_seconds);

  // --- EngineHost: bit-identical for any pool size. ----------------------
  // The multi-tenant host shares one pool across tenants; per-tenant
  // output must still be a pure function of (tenant seed, admission
  // order), never of pool width.
  std::vector<std::vector<QueryResponse>> host_runs;
  bool host_ok = true;
  for (size_t pool_size : {size_t{1}, size_t{4}}) {
    EngineHostOptions host_options;
    host_options.num_threads = pool_size;
    EngineHost host(host_options);
    TenantOptions tenant;
    tenant.default_session_budget = 1e9;
    tenant.root_seed = kSeed;
    if (!host.AddTenant("bench", "t0", *policy, *data, tenant).ok()) {
      std::fprintf(stderr, "host: AddTenant failed\n");
      return 1;
    }
    auto responses = host.ServeBatch("bench", "t0", HistogramBatch(16, kEps));
    if (!responses.ok()) {
      std::fprintf(stderr, "host: %s\n",
                   responses.status().ToString().c_str());
      return 1;
    }
    host_runs.push_back(std::move(*responses));
  }
  for (const QueryResponse& r : host_runs[0]) host_ok &= r.status.ok();
  host_ok = host_ok && Identical(host_runs[0], host_runs[1]);
  std::printf("host_determinism_pool_1_vs_4,%s\n",
              host_ok ? "PASS" : "FAIL");

  // --- Columnar scan engine: shared vs per-query vs row-major. -----------
  // The histogram-family execute phase is scan-bound once sensitivity is
  // cached: every query needs the complete histogram of the data. An
  // unconstrained policy (sensitivity is a cheap closed form, and a
  // shared warm SensitivityCache removes even that) isolates the scan:
  //   row      — every query walks all n rows (the pre-columnar layout),
  //   columnar — every query runs the dictionary-encoded column kernel,
  //   shared   — the batch runs ONE column kernel, every query reuses it.
  // Same root seed + same admission order -> the three engines' served
  // bytes must be bit-identical; that is checked, not assumed.
  constexpr size_t kScanRows = 1 << 19;  // 512k rows, domain stays 2048
  constexpr size_t kScanQueries = 64;
  auto scan_policy = [&]() -> StatusOr<Policy> {
    BLOWFISH_ASSIGN_OR_RETURN(
        Domain dom, Domain::Create({Attribute{"A1", 4, 1.0},
                                    Attribute{"A2", 512, 1.0}}));
    auto domain = std::make_shared<const Domain>(std::move(dom));
    auto graph = std::make_shared<const FullGraph>(domain->size());
    return Policy::Create(domain, graph, ConstraintSet{});
  }();
  if (!scan_policy.ok()) {
    std::fprintf(stderr, "scan policy: %s\n",
                 scan_policy.status().ToString().c_str());
    return 1;
  }
  Random scan_rng(kSeed);
  auto scan_data = MakeData(*scan_policy, kScanRows, scan_rng);
  if (!scan_data.ok()) {
    std::fprintf(stderr, "scan data: %s\n",
                 scan_data.status().ToString().c_str());
    return 1;
  }
  auto scan_cache = std::make_shared<SensitivityCache>(64);
  struct ScanPoint {
    const char* name;
    ScanMode mode;
    double qps = 0.0;
  };
  std::vector<ScanPoint> scan_points = {
      {"row", ScanMode::kRowMajor},
      {"columnar", ScanMode::kPerQueryColumnar},
      {"shared", ScanMode::kSharedColumnar},
  };
  std::vector<std::vector<QueryResponse>> scan_runs;
  for (ScanPoint& point : scan_points) {
    ReleaseEngineOptions opts;
    opts.root_seed = kSeed;
    opts.default_session_budget = 1e9;
    opts.shared_cache = scan_cache;
    opts.scan_mode = point.mode;
    auto e = ReleaseEngine::Create(*scan_policy, *scan_data, opts);
    if (!e.ok()) {
      std::fprintf(stderr, "scan engine: %s\n",
                   e.status().ToString().c_str());
      return 1;
    }
    // Warm the shared sensitivity cache only (a fresh engine per mode
    // keeps the scan measurement itself cold: the measured batch below
    // is each mode's FIRST batch, so shared mode is charged its one
    // amortized scan rather than reusing a previous batch's product).
    if (scan_cache->stats().misses == 0) {
      ReleaseEngineOptions warm_opts = opts;
      auto warm_engine =
          ReleaseEngine::Create(*scan_policy, *scan_data, warm_opts);
      if (warm_engine.ok()) {
        (void)(*warm_engine)->ServeBatch(HistogramBatch(1, kEps));
      }
    }
    const auto start = Clock::now();
    auto responses =
        (*e)->ServeBatch(HistogramBatch(kScanQueries, kEps));
    const double seconds = SecondsSince(start);
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "scan release (%s): %s\n", point.name,
                     r.status.ToString().c_str());
        return 1;
      }
    }
    point.qps = kScanQueries / seconds;
    std::printf("scan_qps_%s,%.3f\n", point.name, point.qps);
    scan_runs.push_back(std::move(responses));
  }
  const double scan_row_qps = scan_points[0].qps;
  const double scan_columnar_qps = scan_points[1].qps;
  const double scan_shared_qps = scan_points[2].qps;
  const double columnar_vs_row = scan_columnar_qps / scan_row_qps;
  const double shared_scan_vs_per_query =
      scan_shared_qps / scan_columnar_qps;
  const double shared_vs_row = scan_shared_qps / scan_row_qps;
  const bool scan_identity = Identical(scan_runs[0], scan_runs[1]) &&
                             Identical(scan_runs[1], scan_runs[2]);
  const bool columnar_speedup_ok = shared_vs_row >= 3.0;
  std::printf("columnar_vs_row,%.2f\n", columnar_vs_row);
  std::printf("shared_scan_vs_per_query,%.2f\n", shared_scan_vs_per_query);
  std::printf("shared_vs_row,%.2f\n", shared_vs_row);
  std::printf("columnar_identity,%s\n", scan_identity ? "PASS" : "FAIL");
  std::printf("columnar_speedup_ge_3x,%s\n",
              columnar_speedup_ok ? "PASS" : "FAIL");

  // --- Spatial & ordered hierarchical ops. -------------------------------
  // The two PR-9 op kinds, measured the same way the scan section is:
  // warm shared SensitivityCache, one batch per engine, and a
  // bit-identity check across two fresh engines with the same root seed
  // (each op derives per-query noise from (seed, admission order), so
  // the transcripts must match exactly).
  constexpr size_t kOpQueries = 64;
  // quadtree reuses the 2-attribute scan workload: the 4 x 512 domain
  // resolves at depth 9, so each release builds and noises a ~350k-node
  // tree before answering the range count.
  double quadtree_qps = 0.0;
  bool quadtree_identity = true;
  {
    const std::vector<std::pair<std::string, std::string>> rect = {
        {"x0", "1"}, {"x1", "3"}, {"y0", "32"}, {"y1", "317"}};
    std::vector<std::vector<QueryResponse>> runs;
    for (size_t run = 0; run < 2; ++run) {
      ReleaseEngineOptions opts;
      opts.root_seed = kSeed;
      opts.default_session_budget = 1e9;
      opts.shared_cache = scan_cache;
      auto e = ReleaseEngine::Create(*scan_policy, *scan_data, opts);
      if (!e.ok()) {
        std::fprintf(stderr, "quadtree engine: %s\n",
                     e.status().ToString().c_str());
        return 1;
      }
      const auto start = Clock::now();
      auto responses =
          (*e)->ServeBatch(OpBatch("quadtree", kOpQueries, kEps, rect));
      const double seconds = SecondsSince(start);
      for (const QueryResponse& r : responses) {
        if (!r.status.ok()) {
          std::fprintf(stderr, "quadtree release: %s\n",
                       r.status.ToString().c_str());
          return 1;
        }
      }
      if (run == 0) quadtree_qps = kOpQueries / seconds;
      runs.push_back(std::move(responses));
    }
    quadtree_identity = Identical(runs[0], runs[1]);
  }
  std::printf("quadtree_qps,%.3f\n", quadtree_qps);
  std::printf("quadtree_identity,%s\n",
              quadtree_identity ? "PASS" : "FAIL");

  // hier_range needs a 1-D ordered tenant: Line(2048) under a line
  // graph, same row count as the scan workload.
  double hier_range_qps = 0.0;
  bool hier_range_identity = true;
  {
    auto ordered_policy = [&]() -> StatusOr<Policy> {
      BLOWFISH_ASSIGN_OR_RETURN(Domain dom, Domain::Line(2048));
      auto domain = std::make_shared<const Domain>(std::move(dom));
      auto graph = std::make_shared<const LineGraph>(domain->size());
      return Policy::Create(domain, graph);
    }();
    if (!ordered_policy.ok()) {
      std::fprintf(stderr, "ordered policy: %s\n",
                   ordered_policy.status().ToString().c_str());
      return 1;
    }
    Random ordered_rng(kSeed);
    auto ordered_data = MakeData(*ordered_policy, kScanRows, ordered_rng);
    if (!ordered_data.ok()) {
      std::fprintf(stderr, "ordered data: %s\n",
                   ordered_data.status().ToString().c_str());
      return 1;
    }
    const std::vector<std::pair<std::string, std::string>> range = {
        {"lo", "256"}, {"hi", "1791"}};
    std::vector<std::vector<QueryResponse>> runs;
    for (size_t run = 0; run < 2; ++run) {
      ReleaseEngineOptions opts;
      opts.root_seed = kSeed;
      opts.default_session_budget = 1e9;
      opts.shared_cache = scan_cache;
      auto e = ReleaseEngine::Create(*ordered_policy, *ordered_data, opts);
      if (!e.ok()) {
        std::fprintf(stderr, "ordered engine: %s\n",
                     e.status().ToString().c_str());
        return 1;
      }
      const auto start = Clock::now();
      auto responses =
          (*e)->ServeBatch(OpBatch("hier_range", kOpQueries, kEps, range));
      const double seconds = SecondsSince(start);
      for (const QueryResponse& r : responses) {
        if (!r.status.ok()) {
          std::fprintf(stderr, "hier_range release: %s\n",
                       r.status.ToString().c_str());
          return 1;
        }
      }
      if (run == 0) hier_range_qps = kOpQueries / seconds;
      runs.push_back(std::move(responses));
    }
    hier_range_identity = Identical(runs[0], runs[1]);
  }
  std::printf("hier_range_qps,%.3f\n", hier_range_qps);
  std::printf("hier_range_identity,%s\n",
              hier_range_identity ? "PASS" : "FAIL");

  // --- JSON artifact (the tracked-baseline format). ----------------------
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"engine_throughput\",\n");
  std::fprintf(json,
               "  \"config\": {\"domain\": %llu, \"rows\": %zu, \"eps\": "
               "%g, \"cold_queries\": %zu, \"warm_queries\": %zu, "
               "\"seed\": %llu},\n",
               static_cast<unsigned long long>(policy->domain().size()),
               data->size(), kEps, kColdQueries, kWarmQueries,
               static_cast<unsigned long long>(kSeed));
  std::fprintf(json, "  \"cold_qps\": %.3f,\n", cold_qps);
  std::fprintf(json, "  \"warm_qps\": %.3f,\n", warm_qps);
  std::fprintf(json, "  \"speedup_warm_over_cold\": %.1f,\n", speedup);
  std::fprintf(json, "  \"warm_qps_by_pool_size\": [\n");
  for (size_t i = 0; i < pool_points.size(); ++i) {
    std::fprintf(json,
                 "    {\"pool_size\": %zu, \"warm_qps\": %.3f}%s\n",
                 pool_points[i].pool_size, pool_points[i].warm_qps,
                 i + 1 < pool_points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"executor\": {\"pool_batches_per_sec\": %.1f, "
               "\"spawn_batches_per_sec\": %.1f, \"speedup\": %.2f},\n",
               kExecBatches / pool_seconds, kExecBatches / spawn_seconds,
               spawn_seconds / pool_seconds);
  std::fprintf(json,
               "  \"columnar\": {\"rows\": %zu, \"queries\": %zu, "
               "\"row_qps\": %.3f, \"columnar_qps\": %.3f, "
               "\"shared_qps\": %.3f, \"shared_vs_row\": %.2f},\n",
               kScanRows, kScanQueries, scan_row_qps, scan_columnar_qps,
               scan_shared_qps, shared_vs_row);
  std::fprintf(json, "  \"columnar_vs_row\": %.2f,\n", columnar_vs_row);
  std::fprintf(json, "  \"shared_scan_vs_per_query\": %.2f,\n",
               shared_scan_vs_per_query);
  std::fprintf(json,
               "  \"ops\": {\"queries\": %zu, \"quadtree_qps\": %.3f, "
               "\"hier_range_qps\": %.3f},\n",
               kOpQueries, quadtree_qps, hier_range_qps);
  std::fprintf(json,
               "  \"checks\": {\"speedup_ge_5x\": %s, "
               "\"determinism_threads_1_vs_4\": %s, "
               "\"host_determinism_pool_1_vs_4\": %s, "
               "\"columnar_identity\": %s, "
               "\"columnar_speedup_ge_3x\": %s, "
               "\"quadtree_identity\": %s, "
               "\"hier_range_identity\": %s}\n",
               speedup >= 5.0 ? "true" : "false",
               deterministic ? "true" : "false",
               host_ok ? "true" : "false",
               scan_identity ? "true" : "false",
               columnar_speedup_ok ? "true" : "false",
               quadtree_identity ? "true" : "false",
               hier_range_identity ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("# wrote %s\n", json_path.c_str());

  return (speedup >= 5.0 && deterministic && host_ok && scan_identity &&
          columnar_speedup_ok && quadtree_identity && hier_range_identity)
             ? 0
             : 1;
}

}  // namespace
}  // namespace blowfish

int main(int argc, char** argv) {
  std::string json_path = "BENCH_engine_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return blowfish::Run(json_path);
}
