// Section 7.1: the Ordered Mechanism's range-query error bound (4/eps^2,
// independent of |T|) against the DP hierarchical mechanism's
// O(log^3|T|/eps^2), swept over domain sizes. Also shows the effect of
// constrained inference on the released cumulative histogram for sparse
// vs dense data (error O(p log^3 |T|/eps^2) with p distinct cumulative
// counts).

#include <cstdio>

#include "core/policy.h"
#include "data/experiment.h"
#include "mech/hierarchical.h"
#include "mech/ordered.h"
#include "util/stats.h"

namespace blowfish {
namespace {

Histogram MakeData(size_t domain, size_t n, size_t distinct, Random& rng) {
  Histogram h(domain);
  for (size_t i = 0; i < n; ++i) {
    size_t mode = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(distinct) - 1));
    h.Add((mode * domain) / distinct);
  }
  return h;
}

int Run() {
  Random rng(2718);
  const double eps = 0.5;
  const size_t reps = BenchReps(30);
  std::printf(
      "figure,domain,mechanism,range_mse,analytic_bound\n");
  for (size_t domain : {256, 1024, 4096, 16384}) {
    Histogram data = MakeData(domain, 20000, 20, rng);
    auto dom =
        std::make_shared<const Domain>(Domain::Line(domain).value());
    Policy line = Policy::Line(dom).value();
    // Fixed query workload.
    Random qrng(5);
    std::vector<std::pair<size_t, size_t>> queries;
    for (int i = 0; i < 200; ++i) {
      auto a = static_cast<size_t>(
          qrng.UniformInt(0, static_cast<int64_t>(domain) - 1));
      auto b = static_cast<size_t>(
          qrng.UniformInt(0, static_cast<int64_t>(domain) - 1));
      queries.emplace_back(std::min(a, b), std::max(a, b));
    }
    double ordered_mse = 0.0, hier_mse = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      auto om = OrderedMechanism(data, line, eps, rng, false).value();
      HierarchicalOptions opts;
      opts.fanout = 16;
      auto hm = HierarchicalMechanism::Release(data, eps, opts, rng).value();
      for (auto [lo, hi] : queries) {
        double truth = data.RangeSum(lo, hi).value();
        double eo = om.RangeQuery(lo, hi).value() - truth;
        double eh = hm.RangeQuery(lo, hi).value() - truth;
        ordered_mse += eo * eo;
        hier_mse += eh * eh;
      }
    }
    ordered_mse /= static_cast<double>(reps * queries.size());
    hier_mse /= static_cast<double>(reps * queries.size());
    std::printf("sec7,%zu,ordered,%.3f,%.3f\n", domain, ordered_mse,
                OrderedMechanismRangeErrorBound(eps));
    std::printf("sec7,%zu,hierarchical,%.3f,%.3f\n", domain, hier_mse,
                HierarchicalMechanism::RangeErrorEstimate(domain, 16, eps));
  }
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
