// Figure 1(e): k-means error vs epsilon under the G^attr policy against
// the Laplace mechanism, for all three datasets (twitter-like, skin01,
// synthetic). Gains grow with dimensionality and shrink with data size.

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140616);
  Dataset twitter = GenerateTwitterLike(193563, rng).value();
  Dataset skin_full = GenerateSkinLike(245057, rng).value();
  Dataset skin01 = Subsample(skin_full, 0.01, rng).value();
  Dataset synth = GenerateGaussianClusters(1000, 4, 64, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(5);  // paper: 50

  std::vector<SeriesPoint> all;
  struct Entry {
    const char* name;
    const Dataset* data;
  };
  for (const Entry& e : {Entry{"twitter", &twitter},
                         Entry{"skin01", &skin01},
                         Entry{"synth", &synth}}) {
    double nonprivate =
        bench::NonPrivateObjective(e.data->Points(), opts, rng);
    auto lap = bench::KMeansErrorSeries(
        std::string(e.name) + ": laplace", *e.data,
        Policy::FullDomain(e.data->domain_ptr()).value(), opts, nonprivate,
        reps, rng);
    auto attr = bench::KMeansErrorSeries(
        std::string(e.name) + ": attribute", *e.data,
        Policy::Attribute(e.data->domain_ptr()).value(), opts, nonprivate,
        reps, rng);
    all.insert(all.end(), lap.begin(), lap.end());
    all.insert(all.end(), attr.begin(), attr.end());
  }
  PrintSeries("fig1e", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
