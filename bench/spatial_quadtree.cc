// Spatial extension bench: 2-D rectangle range counts on the twitter-like
// grid via the quadtree mechanism, under differential privacy (G^full)
// vs uniform-grid partition policies G^P. Coarse quadtree levels aligned
// with the policy's cells are released exactly, so partition policies cut
// the error; the finest partition is fully noiseless — the range-query
// analogue of Fig 1(f)'s k-means story.

#include <cstdio>

#include "data/experiment.h"
#include "data/synthetic.h"
#include "mech/quadtree.h"
#include "util/stats.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(5318008);
  Dataset data = GenerateTwitterLike(193563, rng).value();
  auto dom = data.domain_ptr();
  const size_t reps = BenchReps(8);

  // Random query rectangles within the 400x300 grid.
  Random qrng(17);
  std::vector<Rectangle> queries;
  std::vector<double> truth;
  for (int i = 0; i < 200; ++i) {
    uint64_t x0 = static_cast<uint64_t>(qrng.UniformInt(0, 350));
    uint64_t y0 = static_cast<uint64_t>(qrng.UniformInt(0, 250));
    uint64_t w = static_cast<uint64_t>(qrng.UniformInt(5, 49));
    uint64_t h = static_cast<uint64_t>(qrng.UniformInt(5, 49));
    Rectangle r{{x0, y0}, {x0 + w, y0 + h}};
    queries.push_back(r);
    double count = 0.0;
    for (ValueIndex t : data.tuples()) {
      if (r.Contains(*dom, t)) count += 1.0;
    }
    truth.push_back(count);
  }

  std::printf("figure,policy,eps,exact_levels,range_mse\n");
  auto report = [&](const char* label, const Policy& policy) {
    QuadtreeOptions opts;
    size_t exact = 0;
    for (double eps : {0.1, 0.5, 1.0}) {
      double mse = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        Random fork = rng.Fork();
        auto m =
            QuadtreeMechanism::Release(data, policy, eps, opts, fork)
                .value();
        exact = m.exact_levels();
        for (size_t q = 0; q < queries.size(); ++q) {
          double e = m.RangeCount(queries[q]).value() - truth[q];
          mse += e * e;
        }
      }
      std::printf("spatial,%s,%.1f,%zu,%.3f\n", label, eps, exact,
                  mse / static_cast<double>(reps * queries.size()));
    }
  };
  report("laplace(Gfull)", Policy::FullDomain(dom).value());
  // Cell counts chosen so ceil(card/cells) is a power of two on both axes
  // (400x300 grid): blocks of 16, 8, and 4 grid points align with the
  // padded 512x512 quadtree and make the coarse levels exact.
  report("partition(16x16 blocks)",
         Policy::GridPartition(dom, {25, 19}).value());
  report("partition(8x8 blocks)",
         Policy::GridPartition(dom, {50, 38}).value());
  report("partition(4x4 blocks)",
         Policy::GridPartition(dom, {100, 75}).value());
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
