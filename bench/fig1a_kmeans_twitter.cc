// Figure 1(a): k-means clustering error vs epsilon on the twitter-like
// 400x300 geo grid, comparing the Laplace mechanism (differential
// privacy; G^full) against Blowfish G^{L1,theta} policies with
// theta in {2000km, 1000km, 500km, 100km}.
//
// Output: CSV rows figure,series,epsilon,mean,q25,q75 where the value is
// objective(private) / objective(non-private k-means) — Eqn 10 ratio.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140612);
  // The paper's twitter snapshot: 193,563 tweets.
  Dataset data = GenerateTwitterLike(193563, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(5);  // paper: 50

  double nonprivate =
      bench::NonPrivateObjective(data.Points(), opts, rng);
  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::KMeansErrorSeries(label, data, policy, opts,
                                           nonprivate, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("laplace", Policy::FullDomain(data.domain_ptr()).value());
  for (double theta_km : {2000.0, 1000.0, 500.0, 100.0}) {
    add("blowfish|" + std::to_string(static_cast<int>(theta_km)) + "km",
        Policy::DistanceThreshold(data.domain_ptr(), theta_km).value());
  }
  PrintSeries("fig1a", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
