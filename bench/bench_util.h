// Shared runners for the figure-reproduction benches.
//
// Fig 1 benches report the paper's metric: the ratio of the mean k-means
// objective (Eqn 10) under a private mechanism to the non-private Lloyd
// objective, as a function of epsilon. Fig 2 benches report the mean
// squared error of random range queries. Repetition counts default to
// bench-friendly values and can be raised to the paper's 50 via
// BLOWFISH_BENCH_REPS.

#ifndef BLOWFISH_BENCH_BENCH_UTIL_H_
#define BLOWFISH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/policy.h"
#include "data/experiment.h"
#include "mech/kmeans.h"
#include "mech/ordered_hierarchical.h"
#include "util/random.h"

namespace blowfish {
namespace bench {

/// Non-private k-means objective: best of `restarts` Lloyd runs.
inline double NonPrivateObjective(const std::vector<std::vector<double>>& pts,
                                  const KMeansOptions& opts, Random& rng,
                                  int restarts = 3) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < restarts; ++r) {
    best = std::min(best, LloydKMeans(pts, opts, rng).value().objective);
  }
  return best;
}

/// One Fig-1 series: for each epsilon, mean ratio
/// objective(private under `policy`) / objective(non-private).
inline std::vector<SeriesPoint> KMeansErrorSeries(
    const std::string& label, const Dataset& data, const Policy& policy,
    const KMeansOptions& opts, double nonprivate_objective, size_t reps,
    Random& rng) {
  std::vector<SeriesPoint> points;
  for (double eps : PaperEpsilons()) {
    Summary s = Repeat(reps, rng, [&](Random& r) {
      double obj = BlowfishKMeans(data, policy, eps, opts, r).value()
                       .objective;
      return obj / nonprivate_objective;
    });
    points.push_back(SeriesPoint{label, eps, s});
  }
  return points;
}

/// Random range-query workload over a 1-D domain.
inline std::vector<std::pair<size_t, size_t>> RandomRanges(size_t domain,
                                                           size_t count,
                                                           uint64_t seed) {
  Random rng(seed);
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1));
    auto b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(domain) - 1));
    out.emplace_back(std::min(a, b), std::max(a, b));
  }
  return out;
}

/// One Fig-2 series: mean squared range-query error of the OH mechanism
/// under `policy` for each epsilon.
inline std::vector<SeriesPoint> RangeQueryErrorSeries(
    const std::string& label, const Histogram& hist, const Policy& policy,
    const std::vector<std::pair<size_t, size_t>>& queries,
    const OrderedHierarchicalOptions& opts, size_t reps, Random& rng) {
  std::vector<SeriesPoint> points;
  std::vector<double> truth;
  truth.reserve(queries.size());
  for (auto [lo, hi] : queries) {
    truth.push_back(hist.RangeSum(lo, hi).value());
  }
  for (double eps : PaperEpsilons()) {
    Summary s = Repeat(reps, rng, [&](Random& r) {
      auto m = OrderedHierarchicalMechanism::Release(hist, policy, eps,
                                                     opts, r)
                   .value();
      double mse = 0.0;
      for (size_t q = 0; q < queries.size(); ++q) {
        double e = m.RangeQuery(queries[q].first, queries[q].second).value() -
                   truth[q];
        mse += e * e;
      }
      return mse / static_cast<double>(queries.size());
    });
    points.push_back(SeriesPoint{label, eps, s});
  }
  return points;
}

}  // namespace bench
}  // namespace blowfish

#endif  // BLOWFISH_BENCH_BENCH_UTIL_H_
