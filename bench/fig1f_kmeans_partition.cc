// Figure 1(f): k-means error vs epsilon on the twitter-like grid under
// G^P partition policies of increasing granularity: 10, 100, 1000, 10000,
// and 120000 cells (the last is the original grid — clustering becomes
// exact since both q_size and q_sum have sensitivity 0).

#include "bench_util.h"
#include "data/synthetic.h"

namespace blowfish {
namespace {

int Run() {
  Random rng(20140617);
  Dataset data = GenerateTwitterLike(193563, rng).value();
  KMeansOptions opts;
  opts.k = 4;
  opts.iterations = 10;
  const size_t reps = BenchReps(5);  // paper: 50

  double nonprivate =
      bench::NonPrivateObjective(data.Points(), opts, rng);
  std::vector<SeriesPoint> all;
  auto add = [&](const std::string& label, const Policy& policy) {
    auto series = bench::KMeansErrorSeries(label, data, policy, opts,
                                           nonprivate, reps, rng);
    all.insert(all.end(), series.begin(), series.end());
  };
  add("laplace", Policy::FullDomain(data.domain_ptr()).value());
  // Uniform partitions of the 400x300 grid. cells-per-axis pairs chosen so
  // the product matches the paper's partition sizes.
  struct Part {
    const char* label;
    uint64_t cx, cy;
  };
  for (const Part& p : {Part{"partition|10", 5, 2},
                        Part{"partition|100", 10, 10},
                        Part{"partition|1000", 40, 25},
                        Part{"partition|10000", 100, 100},
                        Part{"partition|120000", 400, 300}}) {
    add(p.label,
        Policy::GridPartition(data.domain_ptr(), {p.cx, p.cy}).value());
  }
  PrintSeries("fig1f", all);
  return 0;
}

}  // namespace
}  // namespace blowfish

int main() { return blowfish::Run(); }
